"""End-to-end event provenance: trailer wire format, flow registry,
stage attribution, determinism guarantees, and export integration."""

import json

import pytest

from repro.apps.nas import SP
from repro.core.session import CouplingSession
from repro.errors import ConfigError
from repro.codec.frame import PROVENANCE_BODY_SIZE, SECTION_HEADER_SIZE
from repro.instrument.packer import (
    EventPackBuilder,
    attach_provenance,
    decode_pack,
    pack_content_size,
    peek_provenance,
    strip_provenance,
    verify_pack,
)
from repro.instrument.overhead import InstrumentationCost
from repro.mpi.pmpi import CallRecord
from repro.telemetry import FlowRegistry, Telemetry, make_flow_id, split_flow_id
from repro.telemetry.provenance import STAGES, FlowRecord

pytestmark = pytest.mark.flow


def _pack(rank=3, app_id=1, nevents=4) -> bytes:
    builder = EventPackBuilder(app_id=app_id, rank=rank, capacity_bytes=4096)
    for i in range(nevents):
        builder.add(CallRecord(
            name="MPI_Send", t_start=i * 1e-3, t_end=i * 1e-3 + 5e-6, comm_id=0,
            comm_rank=rank, comm_size=8, peer=(rank + 1) % 8, tag=i, nbytes=256,
        ))
    return builder.emit()


def _coupled_session(seed=7, prov=True, sample_rate=1.0, telemetry=None):
    session = CouplingSession(
        seed=seed,
        instrumentation=InstrumentationCost(block_size=4096, na_buffers=2),
        telemetry=telemetry,
    )
    name = session.add_application(SP(16, "C", iterations=3), name="sp")
    session.set_analyzer(nprocs=4)
    if prov:
        session.enable_provenance(sample_rate=sample_rate)
    return session, name


# -- wire format -------------------------------------------------------------------


def test_provenance_section_roundtrip():
    blob = _pack()
    stamped = attach_provenance(blob, 0xABC123, app_id=1, rank=3, t_seal=2.5)
    # one extra typed section: header + fixed body
    assert len(stamped) == len(blob) + SECTION_HEADER_SIZE + PROVENANCE_BODY_SIZE
    prov = peek_provenance(stamped)
    assert prov is not None
    assert (prov.flow_id, prov.app_id, prov.rank, prov.t_seal) == (0xABC123, 1, 3, 2.5)
    assert strip_provenance(stamped) == blob


def test_peek_provenance_is_robust():
    assert peek_provenance(_pack()) is None  # plain pack, CRC only
    assert peek_provenance(b"") is None
    assert peek_provenance(b"short") is None
    assert peek_provenance(None) is None
    assert peek_provenance(("not", "bytes")) is None
    blob = _pack()
    assert strip_provenance(blob) == blob  # no-op without a trailer


def test_trailer_is_exempt_from_content_accounting():
    blob = _pack()
    stamped = attach_provenance(blob, 7, app_id=1, rank=3, t_seal=0.0)
    assert pack_content_size(stamped) == pack_content_size(blob)


def test_verify_and_decode_ignore_the_trailer():
    blob = _pack()
    stamped = attach_provenance(blob, 7, app_id=1, rank=3, t_seal=0.0)
    verify_pack(stamped)  # CRC still checks out around the trailer
    header, events = decode_pack(stamped)
    ref_header, ref_events = decode_pack(blob)
    assert header == ref_header
    assert events.tobytes() == ref_events.tobytes()


# -- flow ids ----------------------------------------------------------------------


def test_flow_id_roundtrip_and_disjoint_spaces():
    assert split_flow_id(make_flow_id(2, 1000, 42)) == (2, 1000, 42)
    ids = {make_flow_id(a, r, s) for a in (0, 1) for r in (0, 5) for s in range(10)}
    assert len(ids) == 2 * 2 * 10  # no collisions across writers


# -- registry ----------------------------------------------------------------------


def test_registry_stamps_tolerate_unknown_ids():
    registry = FlowRegistry(seed=0)
    registry.on_enqueue(999, 1.0)
    registry.on_send(999, 1.0)
    registry.on_arrive(999, 1.0)
    registry.on_read(999, 1.0)
    registry.on_dispatch(999, 1.0)
    registry.on_done(999, 1.0)
    registry.on_drop(999, "overflow", 1.0)
    assert len(registry) == 0


def test_registry_sample_rate_validation():
    with pytest.raises(ConfigError):
        FlowRegistry(sample_rate=1.5)
    with pytest.raises(ConfigError):
        FlowRegistry(sample_rate=-0.1)


def test_sampling_is_deterministic_and_keeps_sequence_numbers():
    def sampled_ids(seed):
        registry = FlowRegistry(seed=seed, sample_rate=0.5)
        out = []
        for i in range(40):
            rec = registry.begin(app_id=0, rank=2, global_rank=2, t=float(i))
            if rec is not None:
                out.append(rec.flow_id)
        return out

    a, b = sampled_ids(11), sampled_ids(11)
    assert a == b  # same seed, same subset
    assert 0 < len(a) < 40  # actually sampled
    # Sequence numbers reflect seal order even across skipped packs.
    seqs = [split_flow_id(f)[2] for f in a]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert sampled_ids(12) != a  # different seed, different subset


def test_zero_sample_rate_traces_nothing():
    registry = FlowRegistry(seed=0, sample_rate=0.0)
    for i in range(10):
        assert registry.begin(app_id=0, rank=0, global_rank=0, t=float(i)) is None
    assert len(registry) == 0
    assert registry.sealed[(0, 0)] == 10  # seals still counted


def test_flow_record_stages_telescope():
    record = FlowRecord(flow_id=1, app_id=0, origin_rank=0, origin_global=0, t_seal=1.0)
    record.t_enqueue, record.t_send, record.t_arrive = 1.5, 2.0, 3.0
    record.t_read, record.t_dispatch, record.t_done = 4.5, 4.5, 6.0
    stages = record.stages()
    assert tuple(stages) == STAGES
    assert sum(stages.values()) == pytest.approx(record.end_to_end_s)
    assert record.complete


def test_first_drop_label_wins():
    registry = FlowRegistry(seed=0)
    rec = registry.begin(app_id=0, rank=0, global_rank=0, t=0.0)
    registry.on_drop(rec.flow_id, "tamper", 1.0)
    registry.on_drop(rec.flow_id, "crash", 2.0)
    assert rec.dropped == "tamper"
    assert not rec.complete


# -- end-to-end through the coupled session ----------------------------------------


def test_session_flows_telescope_and_sum_to_end_to_end():
    session, _ = _coupled_session()
    result = session.run()
    flows = result.flows
    assert flows["flows_traced"] > 0
    assert flows["flows_completed"] == flows["flows_traced"]
    assert flows["flows_dropped"] == 0 and flows["losses"] == {}
    # Telescoping per flow: stage sum equals end-to-end exactly.
    for record in session._flows.completed():
        assert sum(record.stages().values()) == pytest.approx(
            record.end_to_end_s, abs=1e-12
        )
    # And in aggregate: per-stage totals sum to the end-to-end total.
    stage_total = sum(s["total_s"] for s in flows["stages"].values())
    assert stage_total == pytest.approx(flows["end_to_end"]["total_s"], rel=1e-9)
    # Watermarks cover every writer, all caught up.
    assert len(flows["watermarks"]) == 16
    assert all(w["in_flight"] == 0 for w in flows["watermarks"].values())
    critical = flows["critical_path"]
    assert critical["total_s"] == pytest.approx(
        max(r.end_to_end_s for r in session._flows.completed())
    )
    assert sum(critical["share"].values()) == pytest.approx(1.0)


def test_provenance_is_observation_only():
    """Provenance on/off: identical timings, stream and board accounting."""
    base_session, name = _coupled_session(prov=False)
    base = base_session.run()
    prov_session, _ = _coupled_session(prov=True)
    prov = prov_session.run()
    assert base.app(name).walltime == prov.app(name).walltime
    assert base.analyzer_walltime == prov.analyzer_walltime
    assert base.analyzer_stats["board"] == prov.analyzer_stats["board"]
    # Stream accounting matches except the physical-wire counters: the
    # provenance section adds real frame bytes (exempt from all modelling).
    def modelled(stats):
        return {
            k: v for k, v in stats.items()
            if not k.startswith("bytes_wire") and k != "pack_ratio"
        }

    assert modelled(base.analyzer_stats["stream"]) == modelled(
        prov.analyzer_stats["stream"]
    )
    assert base.analyzer_stats["bytes"] == prov.analyzer_stats["bytes"]
    assert base.flows is None and prov.flows is not None


def test_same_seed_runs_produce_identical_flow_records():
    records = []
    for _ in range(2):
        session, _ = _coupled_session(sample_rate=0.5)
        session.run()
        records.append(sorted(
            (r.as_dict() for r in session._flows.records()),
            key=lambda d: d["flow_id"],
        ))
    assert records[0] == records[1]
    assert 0 < len(records[0])


def test_report_renders_pipeline_latency_section():
    session, _ = _coupled_session()
    result = session.run()
    text = result.report.render()
    assert "## Pipeline latency (flow provenance)" in text
    assert "end_to_end" in text and "critical path" in text


# -- export integration ------------------------------------------------------------


def test_chrome_trace_contains_flow_arrows(tmp_path):
    telemetry = Telemetry()
    session, _ = _coupled_session(telemetry=telemetry)
    result = session.run()
    trace = telemetry.chrome_trace()
    arrows = [e for e in trace["traceEvents"] if e.get("cat") == "flow"]
    assert {e["ph"] for e in arrows} == {"s", "t", "f"}
    starts = {e["id"] for e in arrows if e["ph"] == "s"}
    finishes = {e["id"] for e in arrows if e["ph"] == "f"}
    assert starts == finishes  # every arrow has both ends
    assert len(starts) == result.flows["flows_completed"]
    for e in arrows:
        if e["ph"] == "f":
            assert e["bp"] == "e"
    # The file round-trips as JSON.
    path = tmp_path / "flows.trace.json"
    telemetry.write_chrome_trace(str(path))
    assert json.loads(path.read_text())["traceEvents"]


def test_jsonl_export_includes_flow_records(tmp_path):
    telemetry = Telemetry()
    session, _ = _coupled_session(telemetry=telemetry)
    result = session.run()
    flows = [r for r in telemetry.jsonl_records() if r["kind"] == "flow"]
    assert len(flows) == result.flows["flows_traced"]
    assert all(r["stamps"]["t_seal"] is not None for r in flows)


# -- loss attribution --------------------------------------------------------------


def test_overflow_drops_and_retry_delay_are_attributed():
    """A stalled reader forces drop-oldest reclaims: stolen flows carry the
    overflow label, surviving ones the timed-out wait as retry delay."""
    from repro.network.machine import small_test_machine
    from repro.vmpi import ROUND_ROBIN, VMPIMap, VMPIStream, map_partitions
    from repro.vmpi.stream import EOF, OVERFLOW_DROP_OLDEST
    from repro.vmpi.virtualization import VirtualizedLauncher

    out = {}

    def writer(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, "Analyzer", ROUND_ROBIN)
        st = VMPIStream(
            na_buffers=2, write_timeout=0.05, max_retries=1,
            overflow=OVERFLOW_DROP_OLDEST,
        )
        yield from st.open_map(mpi, vmap, "w")
        flows = mpi.ctx.world.flows
        for i in range(10):
            builder = EventPackBuilder(app_id=0, rank=mpi.rank, capacity_bytes=4096)
            builder.add(CallRecord(
                name="MPI_Send", t_start=mpi.now, t_end=mpi.now + 1e-6, comm_id=0,
                comm_rank=mpi.rank, comm_size=1, peer=0, tag=i, nbytes=64,
            ))
            rec = flows.begin(app_id=0, rank=mpi.rank,
                              global_rank=mpi.ctx.global_rank,
                              t=mpi.ctx.kernel.now)
            blob = attach_provenance(builder.emit(), rec.flow_id, rec.app_id,
                                     rec.origin_rank, rec.t_seal)
            yield from st.write(payload=blob)
        yield from st.close()
        out["w"] = st.stats()
        yield from mpi.finalize()

    def reader(mpi, out):
        yield from mpi.init()
        vmap = VMPIMap()
        yield from map_partitions(mpi, vmap, 0, ROUND_ROBIN)
        st = VMPIStream(na_buffers=2)
        yield from st.open_map(mpi, vmap, "r")
        st.stall_until(mpi.now + 5.0)
        while True:
            n, _ = yield from st.read()
            if n == EOF:
                break
        yield from st.close()
        out["r"] = st.stats()
        yield from mpi.finalize()

    launcher = VirtualizedLauncher(
        machine=small_test_machine(nodes=4, cores_per_node=4), seed=3
    )
    launcher.add_program("W", nprocs=1, main=writer, out=out)
    launcher.add_program("Analyzer", nprocs=1, main=reader, out=out)
    world = launcher.launch()
    registry = FlowRegistry(seed=3)
    world.flows = registry
    world.run()

    records = list(registry.records())
    assert len(records) == 10
    overflowed = [r for r in records if r.dropped == "overflow"]
    assert len(overflowed) == out["w"]["blocks_dropped"] >= 1
    # Every flow is accounted exactly once: delivered to the reader or lost.
    assert len(overflowed) + sum(1 for r in records if r.t_read is not None) == 10
    # The granted-after-timeout writes carry their wait as retry delay.
    assert sum(r.retry_delay_s for r in records) > 0
    # The tombstones' buffer residence shows up as dropped dwell.
    assert out["r"]["dropped_dwell_s"] > 0


def test_tamper_and_reject_losses_are_attributed():
    """Injected transport faults surface as labelled flow losses: swallowed
    packs as ``tamper``, corrupted ones as ``reject`` at the analyzer."""
    from repro.faults import make_plan

    healthy, name = _coupled_session(prov=False)
    anchor = healthy.run().app(name).walltime * 0.35

    for plan, label, counter in (("drop", "tamper", "packs_dropped"),
                                 ("corrupt", "reject", "packs_rejected")):
        session, name = _coupled_session(seed=7)
        session.inject_faults(make_plan(plan, at=anchor, seed=7))
        result = session.run()
        lost = (
            result.app(name).packs_dropped
            if counter == "packs_dropped"
            else result.analyzer_stats["packs_rejected"]
        )
        assert lost > 0, plan
        flows = result.flows
        assert flows["losses"].get(label, 0) == lost, plan
        assert flows["flows_dropped"] == lost, plan
        # Lost flows never complete; the rest of the pipeline still does.
        assert flows["flows_completed"] == flows["flows_traced"] - lost, plan
