"""The streaming instrumentation interceptor (the paper's preloaded library).

Attached to a rank's PMPI stack before its program starts, it:

1. intercepts ``MPI_Init`` — maps the application partition to the analyzer
   partition (``VMPI_Map``) and opens a write-mode ``VMPI_Stream``;
2. records every subsequent MPI call as a 40-byte event, charging the
   capture cost to the application's timeline; when the current pack
   reaches the block budget it is flushed through the stream — *this write
   blocks when all asynchronous buffers are full*, which is exactly how
   analyzer/network backpressure becomes application overhead;
3. intercepts ``MPI_Finalize`` — flushes the tail pack and closes the
   stream, so the analyzer sees EOF and can reduce.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.codec.frame import PackProvenance
from repro.codec.stages import build_chain
from repro.errors import InstrumentationError, ReproError
from repro.instrument.events import EVENT_RECORD_SIZE
from repro.instrument.overhead import InstrumentationCost
from repro.instrument.packer import EventPackBuilder, pack_content_size
from repro.mpi.pmpi import CallRecord, Interceptor
from repro.vmpi.mapping import MapPolicy, ROUND_ROBIN, VMPIMap, map_partitions
from repro.vmpi.stream import BALANCE_ROUND_ROBIN, VMPIStream

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import ProgramAPI, RankContext


class StreamingInstrumentation(Interceptor):
    """Per-rank online instrumentation state machine."""

    def __init__(
        self,
        mpi: "ProgramAPI",
        analyzer_partition: str = "Analyzer",
        cost: InstrumentationCost | None = None,
        policy: MapPolicy = ROUND_ROBIN,
        channel: int | None = None,
    ):
        self.mpi = mpi
        self.analyzer_partition = analyzer_partition
        self.cost = cost or InstrumentationCost()
        self.policy = policy
        partition = mpi.partition
        # All applications share one stream channel: flows are separated on
        # the analyzer side by the pack header's app id (the multi-level
        # blackboard dispatch key), not by transport channel.
        self.channel = 0 if channel is None else channel
        # Cap the real pack size so the modelled volume (with per-call
        # context) still fits one stream block.
        real_capacity = max(4096, int(self.cost.block_size / self.cost.volume_multiplier))
        self.chain = build_chain(self.cost.reduction) if self.cost.reduction else None
        self.builder = EventPackBuilder(
            app_id=partition.index,
            rank=mpi.rank,
            capacity_bytes=real_capacity,
            chain=self.chain,
        )
        self.vmap = VMPIMap()
        self.stream = VMPIStream(
            block_size=self.cost.block_size,
            balance=BALANCE_ROUND_ROBIN,
            na_buffers=self.cost.na_buffers,
            channel=self.channel,
            write_timeout=self.cost.write_timeout,
            max_retries=self.cost.max_retries,
            backoff_factor=self.cost.backoff_factor,
            overflow=self.cost.overflow,
        )
        self.events_captured = 0
        self.bytes_streamed_modeled = 0
        self.packs_flushed = 0
        self.packs_dropped = 0
        self.codec_cpu_s = 0.0  # virtual CPU spent encoding (chain only)
        # Per-rank time decomposition for the online POP-metrics engine:
        # virtual seconds inside MPI calls proper (PMPI record durations),
        # virtual seconds this layer added on top (capture CPU, codec,
        # flushes, stream backpressure), and the rank's active interval.
        self.mpi_time_s = 0.0
        self.overhead_s = 0.0
        self.t_active_start: float | None = None
        self.t_active_end: float | None = None
        self._open = False
        # CPU accounting is batched: per-event costs accrue as a debt that
        # is charged to the timeline in quanta, keeping the discrete-event
        # count proportional to packs rather than events (identical totals).
        self._cpu_debt = 0.0
        self._per_event_cpu = self.cost.per_event_cpu  # hot-path cache
        self._cpu_quantum = max(self._per_event_cpu * 16, 8e-6)

    # -- PMPI hooks ---------------------------------------------------------------

    def on_exit(self, ctx: "RankContext", record: CallRecord):
        if record.name == "MPI_Init":
            return self._setup_and_record(record)
        if record.name == "MPI_Finalize":
            return self._teardown(record)
        if not self._open:
            raise InstrumentationError(
                f"MPI call {record.name} before MPI_Init on rank {ctx.global_rank}"
            )
        return self._capture(record)

    # -- online steering ----------------------------------------------------------

    def set_reduction(self, spec: str | None) -> str:
        """Switch the reduction chain applied to packs sealed from now on.

        Records already buffered are untouched — the chain applies at seal
        time — and every pack carries its own EVF2 codec descriptor, so the
        analyzer decodes pre- and post-switch packs alike without any
        out-of-band coordination.  Returns the normalized chain spec.
        """
        try:
            chain = build_chain(spec or "")
        except ReproError as exc:
            raise InstrumentationError(
                f"invalid reduction chain {spec!r}: {exc}"
            ) from exc
        self.chain = chain if chain.stages else None
        self.builder.chain = self.chain
        return chain.spec

    # -- stages -------------------------------------------------------------------

    def _setup_and_record(self, record: CallRecord):
        """Generator: VMPI mapping + stream opening inside MPI_Init."""
        mpi = self.mpi
        self.t_active_start = record.t_start
        analyzer = mpi.partition_by_name(self.analyzer_partition)
        if analyzer is None:
            raise InstrumentationError(
                f"no analyzer partition named {self.analyzer_partition!r}"
            )
        kernel = mpi.ctx.kernel
        t_setup = kernel.now
        yield from map_partitions(mpi, self.vmap, analyzer, policy=self.policy)
        if not self.vmap.entries:
            raise InstrumentationError(
                f"rank {mpi.ctx.global_rank}: empty analyzer mapping"
            )
        yield from self.stream.open_map(mpi, self.vmap, "w")
        self.overhead_s += kernel.now - t_setup
        self._open = True
        work = self._capture(record)
        if isinstance(work, (int, float)):
            yield mpi.ctx.kernel.timeout(float(work))
        elif work is not None:
            yield from work

    def _capture(self, record: CallRecord):
        """Capture one event; returns a generator only when work is due.

        Returning ``None`` on the fast path (no flush, debt below quantum)
        lets the PMPI layer skip generator dispatch entirely.
        """
        self.events_captured += 1
        self.mpi_time_s += record.t_end - record.t_start
        self._cpu_debt += self._per_event_cpu
        full = self.builder.add(record)
        if full:
            return self._charge_and_flush()
        if self._cpu_debt >= self._cpu_quantum:
            debt, self._cpu_debt = self._cpu_debt, 0.0
            # The caller charges this as a timeout; book it as overhead here,
            # at the single point where the debt escapes.
            self.overhead_s += debt
            return debt
        return None

    def _charge_and_flush(self):
        """Generator: settle the CPU debt, then flush the current pack.

        Everything awaited in here — the batched capture CPU, codec
        encode time, the flush charge, and the stream write with its
        backpressure stall — is instrumentation-induced, so the whole
        elapsed virtual interval lands in :attr:`overhead_s`.
        """
        kernel = self.mpi.ctx.kernel
        t_enter = kernel.now
        debt, self._cpu_debt = self._cpu_debt, 0.0
        if debt > 0:
            yield kernel.timeout(debt)
        yield from self._flush()
        self.overhead_s += kernel.now - t_enter

    def _flush(self):
        if self.builder.count == 0:
            return
        kernel = self.mpi.ctx.kernel
        # Provenance: register the flow at seal time; the stamp travels
        # in the frame's provenance section so the analyzer side recovers
        # the flow id from the wire bytes.  Like the CRC section it is
        # exempt from all byte accounting; with no registry attached (the
        # default) this is one branch and the pack bytes are unchanged.
        provenance = None
        flows = self.mpi.ctx.world.flows
        if flows is not None:
            record = flows.begin(
                app_id=self.builder.app_id,
                rank=self.builder.rank,
                global_rank=self.mpi.ctx.global_rank,
                t=kernel.now,
            )
            if record is not None:
                provenance = PackProvenance(
                    flow_id=record.flow_id,
                    app_id=record.app_id,
                    rank=record.origin_rank,
                    t_seal=record.t_seal,
                )
        raw_bytes = self.builder.count * EVENT_RECORD_SIZE
        blob = self.builder.emit(now=kernel.now, provenance=provenance)
        # Framing, checksum and provenance sections ride outside the
        # modelled volume budget: charge the content (header + kept
        # records), scaled by the chain's measured compression when a
        # reduction is active.  The identity chain takes neither branch,
        # keeping those runs bit-identical to the unreduced pipeline.
        modeled = self.cost.modeled_bytes(pack_content_size(blob))
        if self.chain is not None:
            encode_cpu = (
                self.cost.codec_per_byte_cpu * raw_bytes * self.chain.cost_weight
            )
            if encode_cpu > 0:
                yield kernel.timeout(encode_cpu)
            self.codec_cpu_s += encode_cpu
            telemetry = self.mpi.ctx.world.telemetry
            telemetry.histogram("codec.encode_s").observe(encode_cpu)
            enc = self.builder.last_encode
            if enc is not None and enc.raw_bytes > 0:
                ratio = len(enc.payload) / enc.raw_bytes
                telemetry.histogram("codec.pack_ratio").observe(ratio)
                modeled = max(1, int(modeled * ratio))
        modeled = min(modeled, self.stream.block_size)
        if self.cost.pack_flush_cpu > 0:
            yield kernel.timeout(self.cost.pack_flush_cpu)
        written = yield from self.stream.write(nbytes=modeled, payload=blob)
        if written == 0:
            # Overflow policy (or an injected fault) discarded the pack.
            self.packs_dropped += 1
            return
        self.bytes_streamed_modeled += modeled
        self.packs_flushed += 1

    def _teardown(self, record: CallRecord):
        """Generator: capture the finalize event, flush the tail, close."""
        kernel = self.mpi.ctx.kernel
        tail = self._capture(record)
        if isinstance(tail, (int, float)):
            yield kernel.timeout(float(tail))
        elif tail is not None:
            yield from tail
        yield from self._charge_and_flush()
        t_close = kernel.now
        yield from self.stream.close()
        self.overhead_s += kernel.now - t_close
        self.t_active_end = kernel.now
        self._open = False
