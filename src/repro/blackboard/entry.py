"""Data entries and the type registry.

A data entry is the paper's tuple ``{Type, Size, Payload}``.  Type
identifiers are computed as a hash of both the *level* name and the
*data-type* name (paper Sec. III-B), which is what makes the multi-level
blackboard work: the same knowledge-source code and type names instantiate
independently per level (per instrumented application).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any

from repro.errors import BlackboardError, UnknownTypeError


def _hash_type(level: str, name: str) -> int:
    h = hashlib.blake2b(digest_size=4)
    h.update(level.encode())
    h.update(b"\x1f")
    h.update(name.encode())
    return int.from_bytes(h.digest(), "little")


class TypeRegistry:
    """Thread-safe bidirectional registry of (level, name) <-> type id."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids: dict[tuple[str, str], int] = {}
        self._names: dict[int, tuple[str, str]] = {}

    def register(self, name: str, level: str = "") -> int:
        """Get-or-create the id of a (level, name) data type."""
        key = (level, name)
        with self._lock:
            existing = self._ids.get(key)
            if existing is not None:
                return existing
            type_id = _hash_type(level, name)
            clash = self._names.get(type_id)
            if clash is not None and clash != key:
                raise BlackboardError(
                    f"type id collision: {key} vs {clash} (rename one type)"
                )
            self._ids[key] = type_id
            self._names[type_id] = key
            return type_id

    def lookup(self, name: str, level: str = "") -> int:
        type_id = self._ids.get((level, name))
        if type_id is None:
            raise UnknownTypeError(f"unregistered data type {name!r} at level {level!r}")
        return type_id

    def name_of(self, type_id: int) -> tuple[str, str]:
        key = self._names.get(type_id)
        if key is None:
            raise UnknownTypeError(f"unknown type id {type_id}")
        return key

    def known(self, type_id: int) -> bool:
        return type_id in self._names

    def __len__(self) -> int:
        return len(self._ids)


class DataEntry:
    """One blackboard datum: ``{Type, Size, Payload}`` with a ref-count.

    The payload is writable only while exactly one reference exists; the
    buffer is released (payload dropped) when the count reaches zero.
    """

    __slots__ = ("type_id", "size", "_payload", "_refs", "_lock", "freed", "meta")

    def __init__(self, type_id: int, size: int, payload: Any, meta: Any = None):
        if size < 0:
            raise BlackboardError(f"negative entry size: {size}")
        self.type_id = type_id
        self.size = size
        self._payload = payload
        self._refs = 1
        self._lock = threading.Lock()
        self.freed = False
        # Optional decoded rider travelling with the payload (e.g. the
        # already-parsed Frame of an event pack), so downstream knowledge
        # sources never re-parse wire bytes the submitter has parsed.
        # Purely advisory: consumers must handle ``None``.
        self.meta = meta

    @property
    def payload(self) -> Any:
        if self.freed:
            raise BlackboardError("payload access after free (ref-count bug)")
        return self._payload

    @property
    def refs(self) -> int:
        return self._refs

    @property
    def writable(self) -> bool:
        return self._refs == 1 and not self.freed

    def retain(self) -> "DataEntry":
        with self._lock:
            if self.freed:
                raise BlackboardError("retain() after free")
            self._refs += 1
        return self

    def release(self) -> bool:
        """Drop one reference; returns True when the buffer was freed."""
        with self._lock:
            if self.freed:
                raise BlackboardError("release() after free")
            self._refs -= 1
            if self._refs < 0:
                raise BlackboardError("negative ref-count")
            if self._refs == 0:
                self.freed = True
                self._payload = None
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DataEntry type={self.type_id:#010x} size={self.size} refs={self._refs}>"
