#!/usr/bin/env python
"""Multi-instrumentation: profile several concurrent applications at once.

The paper's distinguishing capability (Sections II-B, III-B): one analysis
engine, structured as a multi-level blackboard, concurrently profiles
multiple co-launched applications — e.g. an MPMD coupled simulation — and
produces a single report with one chapter per program.  Here we co-launch a
CFD-style stencil code (EulerMHD), a sparse solver (CG) and an ADI solver
(SP), sharing one analyzer partition sized at the paper's recommended 1/10
bandwidth-resource trade-off.

Run:  python examples/multi_instrumentation.py
"""

from repro import CouplingSession
from repro.apps import EulerMHD, nas_kernel
from repro.util.units import fmt_bw, fmt_time


def main() -> None:
    session = CouplingSession(seed=7)

    apps = [
        session.add_application(EulerMHD(128, grid=2048, iterations=6,
                                         checkpoint_every=3)),
        session.add_application(nas_kernel("CG", 64, "C", iterations=8)),
        session.add_application(nas_kernel("SP", 100, "C", iterations=4)),
    ]

    # ~1/10 ratio over the 292 application ranks -> 29 analyzer ranks.
    session.set_analyzer(ratio=10.0)
    result = session.run()

    print(f"analyzer: {result.analyzer_nprocs} ranks for "
          f"{sum(result.apps[a].nprocs for a in apps)} instrumented ranks")
    print(f"analyzer processed {result.analyzer_stats['packs']} event packs "
          f"({result.analyzer_stats['bytes']} bytes)")
    print()

    for name in apps:
        run = result.apps[name]
        chapter = result.report.chapter(name)
        hits, size, _ = chapter.topology.totals()
        print(f"--- {name}")
        print(f"    wall-time {fmt_time(run.walltime)}, {run.events} events, "
              f"Bi {fmt_bw(run.bi_bandwidth)}")
        print(f"    p2p: {int(hits)} messages, {size / 1e6:.1f} MB, "
              f"{len(chapter.topology.cells)} communicating pairs")
        wait = chapter.waitstate.summary()
        print(f"    mean waiting fraction {wait['wait_fraction_mean']:.3f}")

    print()
    print("Full report (one chapter per application)")
    print("=" * 60)
    print(result.report.render(verbosity=1))


if __name__ == "__main__":
    main()
