"""The simulation event loop.

The kernel keeps a binary heap of ``(time, sequence, event)`` entries.  Events
fire in timestamp order; ties break by scheduling order, which makes whole
simulations deterministic.  Deadlock (live processes but an empty heap) raises
:class:`~repro.errors.DeadlockError` naming the blocked processes, which in
practice pinpoints mismatched sends/receives immediately.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator

from repro.errors import DeadlockError, ProcessCrashError, SimulationError
from repro.simt.primitives import AllOf, AnyOf, SimEvent, Timeout
from repro.simt.process import Process
from repro.telemetry import KERNEL_PID, NULL_TELEMETRY, Telemetry, hostprof

_INF = float("inf")


class PeriodicHook:
    """One periodic kernel callback (see :meth:`Kernel.call_every`)."""

    __slots__ = ("interval", "fn", "next_due", "active", "fired")

    def __init__(self, interval: float, fn):
        self.interval = interval
        self.fn = fn
        self.next_due = 0.0
        self.active = True
        self.fired = 0

    def cancel(self) -> None:
        self.active = False


class Kernel:
    """Discrete-event simulation kernel with virtual time in seconds."""

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_processes",
        "_current",
        "_crashes",
        "_hooks",
        "_hooks_due",
        "telemetry",
        "_ctr_dispatched",
        "_gauge_heap",
        "trace",
        "events_dispatched",
    )

    def __init__(self, *, trace: bool = False, telemetry: Telemetry | None = None):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, SimEvent]] = []
        self._seq = 0
        self._processes: list[Process] = []
        self._current: Process | None = None
        self._crashes: list[tuple[Process, BaseException]] = []
        self._hooks: list[PeriodicHook] = []
        #: earliest ``next_due`` among active hooks (inf when none) — the
        #: dispatch loop's per-event hook test is one float compare, never
        #: a scan.  May go stale-low (a directly cancelled hook), in which
        #: case :meth:`_fire_hooks` recomputes and fires nothing; it must
        #: never be stale-high, so every registration lowers it.
        self._hooks_due: float = _INF
        # The trace debug aid records dispatch markers through telemetry, so
        # trace=True without an explicit instance gets a private live one.
        if telemetry is None and trace:
            telemetry = Telemetry()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if self.telemetry.enabled:
            self.telemetry.bind_clock(lambda: self.now)
            self.telemetry.name_track(KERNEL_PID, "simulation kernel")
            self._ctr_dispatched = self.telemetry.counter("kernel.events_dispatched")
            self._gauge_heap = self.telemetry.gauge("kernel.heap_depth", pid=KERNEL_PID)
        self.trace = trace
        self.events_dispatched = 0

    # -- process management ----------------------------------------------------

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Create a process from a generator; it starts at the current time."""
        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    @property
    def current_process(self) -> Process | None:
        """The process being stepped right now (None outside process code)."""
        return self._current

    def alive_processes(self) -> list[Process]:
        return [p for p in self._processes if p.is_alive]

    # -- waitable factories ------------------------------------------------------

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value=value)

    def any_of(self, events: list[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: list[SimEvent]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------------

    def _schedule_event(self, event: SimEvent, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def _record_crash(self, proc: Process, exc: BaseException) -> None:
        self._crashes.append((proc, exc))

    # -- periodic callbacks ------------------------------------------------------

    def call_every(self, interval: float, fn, *, first: float | None = None) -> PeriodicHook:
        """Register ``fn(now)`` to run every ``interval`` virtual seconds.

        Hooks are observers, not events: they never enter the schedule, so
        they cannot keep the simulation alive — they fire only while real
        events remain, immediately before the dispatch that first reaches
        or passes their due time (the clock reads exactly the due time).
        Multiple hooks due at once fire in registration order, keeping runs
        deterministic.  A hook must not raise; exceptions propagate out of
        :meth:`run`.  ``run(until=<deadline>)`` does not fire hooks in the
        idle gap between the last event and the deadline.

        ``first`` pins the first due time to an absolute virtual instant
        (it must not be in the past), letting a subscriber align its firing
        grid — e.g. window boundaries at exact multiples of the interval —
        independent of when it attached; later firings step by ``interval``
        from there.
        """
        if interval <= 0:
            raise SimulationError(f"call_every interval must be > 0, got {interval}")
        hook = PeriodicHook(float(interval), fn)
        if first is None:
            hook.next_due = self.now + hook.interval
        else:
            if first < self.now:
                raise SimulationError(
                    f"call_every first={first} is in the past (now={self.now})"
                )
            hook.next_due = float(first)
        self._hooks.append(hook)
        if hook.next_due < self._hooks_due:
            self._hooks_due = hook.next_due
        return hook

    def cancel_every(self, hook: PeriodicHook) -> None:
        hook.cancel()
        if hook in self._hooks:
            self._hooks.remove(hook)
        self._hooks_due = min(
            (h.next_due for h in self._hooks if h.active), default=_INF
        )

    def _fire_hooks(self, upto: float) -> None:
        """Run every hook due at or before ``upto``, advancing the clock."""
        while True:
            due = min(
                (h.next_due for h in self._hooks if h.active), default=None
            )
            if due is None or due > upto:
                break
            if due > self.now:
                self.now = due
            for hook in list(self._hooks):
                if hook.active and hook.next_due <= due:
                    hook.next_due += hook.interval
                    hook.fired += 1
                    hook.fn(self.now)
            if not any(h.active for h in self._hooks):
                self._hooks = [h for h in self._hooks if h.active]
                break
        self._hooks_due = min(
            (h.next_due for h in self._hooks if h.active), default=_INF
        )

    # -- the loop ---------------------------------------------------------------

    def step(self) -> None:
        """Dispatch the next scheduled event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("time went backwards (kernel bug)")
        if when >= self._hooks_due:
            self._fire_hooks(when)
        self.now = when
        self.events_dispatched += 1
        if event.state == 0:  # PENDING: a scheduled timeout firing now
            event.state = 1  # SUCCEEDED (value was set at creation)
        tel = self.telemetry
        if tel.enabled:
            self._ctr_dispatched.inc()
            self._gauge_heap.set(len(self._heap))
            if self.trace:
                tel.instant(
                    "kernel.fire",
                    pid=KERNEL_PID,
                    cat="kernel",
                    args={"event": repr(event)},
                )
        event._dispatch()
        # A process that crashed with nobody joining it must surface the
        # error instead of silently vanishing from the simulation.
        if event._is_process and event.state == 2 and event.num_waiters == 0:
            raise ProcessCrashError(event.name, event.value) from event.value

    def run(self, until: float | SimEvent | None = None) -> Any:
        """Run to completion, to a deadline, or until an event fires.

        * ``until=None`` — drain the schedule.  If live processes remain
          afterwards, raise :class:`DeadlockError`.
        * ``until=<float>`` — advance virtual time to the deadline.
        * ``until=<SimEvent>`` — run until that event triggers and return its
          value (raising if it failed).
        """
        if self.telemetry.enabled:
            with self.telemetry.span("kernel.run", pid=KERNEL_PID, cat="kernel"):
                return self._run(until)
        return self._run(until)

    def _run(self, until: float | SimEvent | None) -> Any:
        # Host-time plane: account wall seconds and heap ops of this drain
        # into the active host profiler.  Everything a simulation does runs
        # inside this loop, so items/total_s is the simulator's true
        # dispatch throughput (events per host second).
        hp = hostprof.ACTIVE
        if not hp.enabled:
            return self._drain(until)
        t0 = hp.now()
        dispatched0 = self.events_dispatched
        seq0 = self._seq
        try:
            return self._drain(until)
        finally:
            dispatched = self.events_dispatched - dispatched0
            hp.timer("kernel.dispatch").add(hp.now() - t0, items=dispatched)
            hp.count("kernel.heap_pushes", self._seq - seq0)
            hp.count("kernel.heap_pops", dispatched)

    def _drain(self, until: float | SimEvent | None) -> Any:
        fast = not self.telemetry.enabled
        if isinstance(until, SimEvent):
            stop_event = until
            # Joining through run() counts as observing the event.
            stop_event.add_callback(lambda _ev: None)
            while not stop_event.triggered:
                if not self._heap:
                    self._raise_deadlock(waiting_for=stop_event)
                self.step()
            if stop_event.state == 2:  # FAILED
                raise stop_event.value
            return stop_event.value

        if until is not None:
            deadline = float(until)
            if deadline < self.now:
                raise SimulationError(f"deadline {deadline} is in the past ({self.now})")
            if fast:
                self._drain_fast(deadline)
            else:
                while self._heap and self._heap[0][0] <= deadline:
                    self.step()
            self.now = deadline
            return None

        if fast:
            self._drain_fast(None)
        else:
            while self._heap:
                self.step()
        blocked = self.alive_processes()
        if blocked:
            raise DeadlockError([p.name for p in blocked])
        return None

    def _drain_fast(self, deadline: float | None) -> None:
        """The telemetry-off dispatch loop: :meth:`step` inlined, with
        same-timestamp batching.

        Event order, hook firing points and the virtual clock are exactly
        those of the ``step()`` loop — only per-event Python overhead is
        removed: no method-call frames, no per-event telemetry branch, the
        hook test is one compare against :attr:`_hooks_due`, and events
        sharing a timestamp are dispatched in a batch that skips the
        redundant back-in-time check after the first.
        """
        heap = self._heap
        pop = heapq.heappop
        limit = _INF if deadline is None else deadline
        while heap and heap[0][0] <= limit:
            when, _seq, event = pop(heap)
            if when < self.now:
                raise SimulationError("time went backwards (kernel bug)")
            while True:
                # A dispatched callback may register a hook due *now*
                # (call_every(first=now)), so the compare stays per-event,
                # exactly like step(); after firing, _hooks_due > when.
                if when >= self._hooks_due:
                    self._fire_hooks(when)
                self.now = when
                self.events_dispatched += 1
                if event.state == 0:  # PENDING: a timeout firing now
                    event.state = 1  # SUCCEEDED (value was set at creation)
                event._dispatch()
                if event._is_process and event.state == 2 and event.num_waiters == 0:
                    raise ProcessCrashError(event.name, event.value) from event.value
                if heap and heap[0][0] == when:
                    when, _seq, event = pop(heap)
                else:
                    break

    def _raise_deadlock(self, waiting_for: SimEvent) -> None:
        blocked = [p.name for p in self.alive_processes()]
        raise DeadlockError(blocked or [f"<waiting for {waiting_for!r}>"])
