"""The blackboard facade: control system + storage accounting.

The control system (paper Figure 3/13) is deliberately simple: a hash table
from type id to sensitive knowledge sources; submitting an entry offers it
to each sensitive KS, and the KS whose sensitivity set just became complete
yields a job pushed onto the FIFO array.  Opportunistic reasoning is the
ability of any KS to register or remove KSs, including itself.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import BlackboardError, UnknownTypeError
from repro.blackboard.entry import DataEntry, TypeRegistry
from repro.blackboard.jobs import Job, JobQueues
from repro.blackboard.ks import KnowledgeSource, Operation
from repro.telemetry import NULL_TELEMETRY, Telemetry, hostprof
from repro.telemetry.hostprof import host_now


class Blackboard:
    """A single-level (or level-agnostic) parallel blackboard."""

    def __init__(
        self,
        nqueues: int = 8,
        seed: int = 0,
        registry: TypeRegistry | None = None,
        telemetry: Telemetry | None = None,
        track_pid: int = 0,
    ):
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.track_pid = track_pid
        self.types = registry or TypeRegistry()
        self.queues = JobQueues(nqueues=nqueues, seed=seed, telemetry=self.telemetry)
        self._sensitivity: dict[int, list[KnowledgeSource]] = {}
        self._ks_lock = threading.RLock()
        self._all_ks: list[KnowledgeSource] = []
        # Storage accounting (the blackboard is the temporary storage medium).
        self._stats_lock = threading.Lock()
        self.entries_submitted = 0
        self.jobs_executed = 0
        self.bytes_current = 0
        self.bytes_peak = 0
        self.bytes_total = 0
        self._in_flight = 0
        self._idle = threading.Condition()

    # -- type & KS management ------------------------------------------------------

    def register_type(self, name: str, level: str = "") -> int:
        return self.types.register(name, level)

    def register_ks(
        self,
        name: str,
        sensitivities: list[int],
        operation: Operation,
    ) -> KnowledgeSource:
        """Install a knowledge source (callable at any time, from any KS)."""
        for type_id in sensitivities:
            if not self.types.known(type_id):
                raise UnknownTypeError(
                    f"KS {name!r}: sensitivity {type_id:#x} is not a registered type"
                )
        ks = KnowledgeSource(name, sensitivities, operation)
        with self._ks_lock:
            self._all_ks.append(ks)
            for type_id in ks.sensitivity_types:
                self._sensitivity.setdefault(type_id, []).append(ks)
        return ks

    def remove_ks(self, ks: KnowledgeSource) -> None:
        with self._ks_lock:
            if ks not in self._all_ks:
                raise BlackboardError(f"KS {ks.name!r} not registered")
            self._all_ks.remove(ks)
            for type_id in ks.sensitivity_types:
                self._sensitivity[type_id].remove(ks)

    def knowledge_sources(self) -> list[KnowledgeSource]:
        with self._ks_lock:
            return list(self._all_ks)

    # -- submission (the control system) ---------------------------------------------

    def submit(
        self,
        type_id: int,
        payload: Any,
        size: int | None = None,
        meta: Any = None,
    ) -> DataEntry:
        """Push a data entry; triggers sensitive knowledge sources.

        ``meta`` rides along on the entry (see :class:`DataEntry`); the
        blackboard itself never reads it.
        """
        if not self.types.known(type_id):
            raise UnknownTypeError(f"submit of unregistered type {type_id:#x}")
        hp = hostprof.ACTIVE
        t_host = hp.now() if hp.enabled else 0.0
        if size is None:
            size = len(payload) if hasattr(payload, "__len__") else 0
        entry = DataEntry(type_id, size, payload, meta)
        with self._stats_lock:
            self.entries_submitted += 1
            self.bytes_current += size
            self.bytes_total += size
            if self.bytes_current > self.bytes_peak:
                self.bytes_peak = self.bytes_current
        with self._ks_lock:
            listeners = list(self._sensitivity.get(type_id, ()))
        jobs: list[Job] = []
        for ks in listeners:
            entry.retain()
            complete = ks.offer(entry)
            if complete is not None:
                jobs.append(Job(ks=ks, entries=complete))
        # The submitter's own reference is dropped once fan-out is done.
        self._release_entry(entry)
        if jobs:
            if self.telemetry.enabled:
                t_sub = self.telemetry.now()
                for job in jobs:
                    job.t_submitted = t_sub
            with self._idle:
                self._in_flight += len(jobs)
            self.queues.push_many(jobs)
        if hp.enabled:
            # Control-system scheduling cost: fan-out + FIFO pushes.
            hp.timer("blackboard.submit").add(
                hp.now() - t_host, items=len(jobs), nbytes=size
            )
        return entry

    def submit_named(self, name: str, payload: Any, level: str = "", size: int | None = None) -> DataEntry:
        return self.submit(self.types.lookup(name, level), payload, size)

    # -- execution ----------------------------------------------------------------------

    def execute(self, job: Job) -> None:
        """Run one job and release its input entries."""
        tel = self.telemetry
        hp = hostprof.ACTIVE
        span = None
        t_host = 0.0
        if tel.enabled or hp.enabled:
            t_host = host_now()
        if tel.enabled:
            span = tel.span(
                "blackboard.job",
                pid=self.track_pid,
                cat="blackboard",
                args={"ks": job.ks.name},
            )
        try:
            job.ks.operation(self, job.entries)
            job.ks.fired += 1
        finally:
            for entry in job.entries:
                self._release_entry(entry)
            with self._stats_lock:
                self.jobs_executed += 1
            if hp.enabled:
                hp.timer("blackboard.execute").add(host_now() - t_host)
            if span is not None:
                tel.counter("blackboard.jobs_executed").inc()
                cpu_s = host_now() - t_host
                tel.histogram("blackboard.job_cpu_s").observe(cpu_s)
                # Per-KS cost breakdown: which operation the analysis time
                # actually goes to (the report's latency attribution input).
                tel.histogram(f"blackboard.ks_cpu_s.{job.ks.name}").observe(cpu_s)
                if job.t_submitted is not None:
                    tel.histogram("blackboard.job_dwell_s").observe(
                        max(0.0, tel.now() - job.t_submitted - cpu_s)
                    )
                span.end()
            with self._idle:
                self._in_flight -= 1
                if self._in_flight == 0 and self.queues.empty:
                    self._idle.notify_all()

    def run_until_idle(self, max_jobs: int | None = None) -> int:
        """Inline mode: drain jobs in the calling thread; returns jobs run."""
        executed = 0
        while max_jobs is None or executed < max_jobs:
            job = self.queues.try_pop(start=0)
            if job is None:
                break
            self.execute(job)
            executed += 1
        return executed

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no jobs are queued or running (thread-pool mode)."""
        with self._idle:
            return self._idle.wait_for(
                lambda: self._in_flight == 0 and self.queues.empty, timeout=timeout
            )

    # -- internals ----------------------------------------------------------------------

    def _release_entry(self, entry: DataEntry) -> None:
        if entry.release():
            with self._stats_lock:
                self.bytes_current -= entry.size

    # -- introspection -------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        with self._stats_lock:
            return {
                "entries_submitted": self.entries_submitted,
                "jobs_executed": self.jobs_executed,
                "bytes_current": self.bytes_current,
                "bytes_peak": self.bytes_peak,
                "bytes_total": self.bytes_total,
                "jobs_queued": len(self.queues),
                "jobs_queued_hwm": self.queues.depth_hwm,
                "lock_failures": self.queues.lock_failures,
            }
