"""BT and SP: ADI solvers on the NPB multi-partition scheme.

Both run on a square grid of q x q ranks (nprocs must be a perfect square)
and perform, per time step, three directional sweep phases of q pipelined
sub-stages each; every sub-stage exchanges a cell face with the successor in
the sweep direction.  SP solves scalar penta-diagonal systems with *two*
sub-sweeps (forward + backward substitution) of small faces — making it the
chatty, high-``Bi`` benchmark — while BT's block-tridiagonal solves move
fewer, ~2.5x larger faces.

The resulting neighbour structure (wrap-around row/column/diagonal
successors) is the torus pattern visible in the paper's Figure 17(d).
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.apps.base import ClassSpec, NASKernel, is_square


class _ADIBase(NASKernel):
    """Shared machinery of the multi-partition sweeps."""

    #: sub-sweeps per direction (forward/backward substitution)
    SWEEPS = 1
    #: face-size multiplier relative to the 5-variable scalar face
    FACE_FACTOR = 1.0

    @classmethod
    def validate_nprocs(cls, nprocs: int) -> None:
        if not is_square(nprocs):
            raise ConfigError(
                f"{cls.name} requires a square process count, got {nprocs}"
            )

    def face_bytes(self) -> int:
        """One exchanged cell face: 5 variables x (N/q)^2 doubles."""
        q = math.isqrt(self.nprocs)
        cells = (self.spec.size / q) ** 2
        return max(64, int(5 * cells * 8 * self.FACE_FACTOR))

    def _successor(self, row: int, col: int, q: int, dim: int, direction: int) -> int:
        step = 1 if direction == 0 else -1
        if dim == 0:  # x sweep: along the row
            return row * q + (col + step) % q
        if dim == 1:  # y sweep: along the column
            return ((row + step) % q) * q + col
        # z sweep: diagonal successor
        return ((row + step) % q) * q + (col + step) % q

    def main(self, mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.size != self.nprocs:
            raise ConfigError(
                f"{self.label} built for {self.nprocs} ranks, launched on {comm.size}"
            )
        q = math.isqrt(self.nprocs)
        row, col = divmod(comm.rank, q)
        face = self.face_bytes()
        stages = 3 * self.SWEEPS * q
        stage_cpu = self.step_compute_seconds(mpi) / stages
        for _it in range(self.iterations):
            for dim in range(3):
                for direction in range(self.SWEEPS):
                    succ = self._successor(row, col, q, dim, direction)
                    # Predecessor is the inverse hop of the successor.
                    pred = self._predecessor(row, col, q, dim, direction)
                    tag = dim * 2 + direction
                    for _stage in range(q):
                        yield from mpi.compute(stage_cpu)
                        rq = yield from comm.irecv(source=pred, tag=tag)
                        sq = yield from comm.isend(succ, nbytes=face, tag=tag)
                        yield from comm.waitall([rq, sq])
            # Residual norm check (NPB verifies every few steps).
            yield from comm.allreduce(nbytes=40)
        yield from comm.barrier()
        yield from mpi.finalize()

    def _predecessor(self, row: int, col: int, q: int, dim: int, direction: int) -> int:
        step = -1 if direction == 0 else 1
        if dim == 0:
            return row * q + (col + step) % q
        if dim == 1:
            return ((row + step) % q) * q + col
        return ((row + step) % q) * q + (col + step) % q


class BT(_ADIBase):
    """Block-tridiagonal ADI solver (fewer, larger faces)."""

    name = "BT"
    SWEEPS = 1
    FACE_FACTOR = 2.5
    CLASSES = {
        "C": ClassSpec(size=162, niter=200, gops=2776.0),
        "D": ClassSpec(size=408, niter=250, gops=58730.0),
    }


class SP(_ADIBase):
    """Scalar penta-diagonal ADI solver (chatty: forward+backward sweeps)."""

    name = "SP"
    SWEEPS = 2
    FACE_FACTOR = 1.0
    CLASSES = {
        "C": ClassSpec(size=162, niter=400, gops=2958.0),
        "D": ClassSpec(size=408, niter=500, gops=64057.0),
    }
