#!/usr/bin/env python
"""Pipeline latency attribution: where does an event pack's time go?

With provenance enabled, every pack a writer seals is stamped at each hop
of the streaming pipeline — seal, stream enqueue, send, arrival, read,
blackboard dispatch, analysis done.  The stages telescope, so a pack's
stage latencies sum to its end-to-end latency exactly.  This example runs
the coupled SP workload with a deliberately undersized analyzer, prints
the per-stage summary, renders the critical-path pack as an ASCII
waterfall, and shows per-stream watermarks (how far analysis lags behind
production).

Run:  python examples/flow_waterfall.py
"""

from repro.apps.nas import SP
from repro.core.session import CouplingSession
from repro.instrument.overhead import InstrumentationCost
from repro.telemetry.flow import waterfall
from repro.util.units import fmt_time


def main() -> None:
    session = CouplingSession(
        seed=42,
        # Small packs: many flows per writer rather than one tail flush.
        instrumentation=InstrumentationCost(block_size=4096, na_buffers=2),
    )
    session.add_application(SP(16, "C", iterations=3), name="sp")
    # Two readers for sixteen writers: backpressure shows up as dwell.
    session.set_analyzer(nprocs=2)
    registry = session.enable_provenance()
    result = session.run()

    flows = result.flows
    print(f"flows traced:   {flows['flows_traced']} "
          f"(completed {flows['flows_completed']}, dropped {flows['flows_dropped']})")
    print("per-stage latency:")
    for stage, s in flows["stages"].items():
        print(f"  {stage:>9s}  n={s['count']:3d}  p50={fmt_time(s['p50_s'])}"
              f"  p95={fmt_time(s['p95_s'])}  total={fmt_time(s['total_s'])}")
    end = flows["end_to_end"]
    print(f"  end-to-end n={end['count']:3d}  p50={fmt_time(end['p50_s'])}"
          f"  p95={fmt_time(end['p95_s'])}  total={fmt_time(end['total_s'])}")

    critical = flows["critical_path"]
    worst = registry.get(critical["flow_id"])
    print(f"\ncritical path: flow {critical['flow_id']:#x} "
          f"(app rank {worst.origin_rank} -> analyzer g{worst.consumer_global}), "
          f"end-to-end {fmt_time(critical['total_s'])}")
    total = critical["total_s"]
    width = 48
    for stage, start, dur in waterfall(worst):
        offset = int((start - worst.t_seal) / total * width) if total else 0
        bar = max(1, int(dur / total * width)) if total else 1
        print(f"  {stage:>9s} |{' ' * offset}{'#' * bar:<{width - offset}}| "
              f"{fmt_time(dur)} ({critical['share'][stage]:.0%})")

    print("\nwatermarks (analysis lag per producer stream):")
    for name, w in sorted(flows["watermarks"].items()):
        print(f"  {name:>12s}  sealed={w['sealed']:3d}  completed={w['completed']:3d}"
              f"  lag={fmt_time(w['lag_s'] or 0)}  max lag={fmt_time(w['max_lag_s'])}")


if __name__ == "__main__":
    main()
