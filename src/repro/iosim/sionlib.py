"""SIONlib-style task-local file aggregation.

SIONlib (Frings et al., SC'09 — reference [2] of the paper) lets N tasks
write logical task-local files into a small number of physical containers,
removing the N-fold metadata storm and giving each task an aligned chunk.
Score-P's trace mode uses it in Figure 16.

Model: one physical container per ``tasks_per_file`` tasks.  Only the first
task to touch a container pays the create/open metadata transaction; writes
go through the shared data path with a small alignment overhead (chunks are
padded to the file-system block size).
"""

from __future__ import annotations

from repro.errors import IOSimError
from repro.iosim.filesystem import ParallelFS


class SionFile:
    """A shared physical container multiplexing many logical task files."""

    #: Lustre-style alignment block for chunk padding.
    BLOCK_SIZE = 64 * 1024

    def __init__(self, fs: ParallelFS, path: str, tasks_per_file: int = 512):
        if tasks_per_file < 1:
            raise IOSimError(f"tasks_per_file must be >= 1, got {tasks_per_file}")
        self.fs = fs
        self.path = path
        self.tasks_per_file = tasks_per_file
        self._opened_containers: set[int] = set()
        self._task_sizes: dict[int, int] = {}
        self.physical_size = 0

    def container_of(self, task: int) -> int:
        return task // self.tasks_per_file

    def open_task(self, task: int, service_scale: float = 1.0):
        """Generator: open the logical file of ``task``.

        Pays the metadata transaction only for the first task per container.
        """
        container = self.container_of(task)
        if container not in self._opened_containers:
            self._opened_containers.add(container)
            yield from self.fs.metadata_op(service_scale)
        else:
            yield self.fs.kernel.timeout(0.0)
        self._task_sizes.setdefault(task, 0)

    def write_task(self, task: int, nbytes: int):
        """Generator: append ``nbytes`` to the task's logical file."""
        if task not in self._task_sizes:
            raise IOSimError(f"task {task}: write before open_task")
        if nbytes < 0:
            raise IOSimError(f"task {task}: negative write")
        padded = -(-nbytes // self.BLOCK_SIZE) * self.BLOCK_SIZE
        self._task_sizes[task] += nbytes
        self.physical_size += padded
        self.fs.bytes_written += padded
        yield self.fs._capped_transfer(padded, None)

    def close_task(self, task: int):
        """Generator: close a logical task file (no metadata op needed)."""
        if task not in self._task_sizes:
            raise IOSimError(f"task {task}: close before open_task")
        yield self.fs.kernel.timeout(0.0)

    def task_size(self, task: int) -> int:
        return self._task_sizes.get(task, 0)

    @property
    def containers_used(self) -> int:
        return len(self._opened_containers)

    @property
    def logical_size(self) -> int:
        return sum(self._task_sizes.values())
