"""Shared machinery of file-based trace writers.

A trace writer accumulates encoded events in a per-rank memory buffer; when
the buffer fills it flushes through the shared parallel file system (the
dreaded mid-run trace flush), and everything left is flushed at finalize.
Writers either create one task-local file per rank (per-rank metadata
transactions) or write through a SIONlib container
(:class:`~repro.iosim.sionlib.SionFile`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigError
from repro.iosim.filesystem import ParallelFS
from repro.iosim.sionlib import SionFile

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import RankContext

#: Effective OTF2 bytes per event.  Calibrated against the paper's in-text
#: numbers: Score-P traces of SP.D are 313 MB at 256 procs over ~150k
#: events/rank (full run), i.e. ~8 B/event on disk; with definition records
#: and SIONlib block padding the effective cost lands near 28 B/event —
#: which also reproduces the paper's ~2.9x online/Score-P volume ratio
#: against our 80 B/event online records.
OTF2_BYTES_PER_EVENT = 28


class TraceWriterState:
    """Per-rank buffered trace writer over the shared FS."""

    def __init__(
        self,
        fs: ParallelFS,
        rank: int,
        bytes_per_event: int = OTF2_BYTES_PER_EVENT,
        buffer_bytes: int = 16 * 1024 * 1024,
        sion: SionFile | None = None,
        amortize_fixed: float = 1.0,
    ):
        if bytes_per_event <= 0:
            raise ConfigError("bytes_per_event must be > 0")
        if buffer_bytes <= 0:
            raise ConfigError("buffer_bytes must be > 0")
        if not (0 < amortize_fixed <= 1.0):
            raise ConfigError("amortize_fixed must be in (0, 1]")
        self.fs = fs
        self.rank = rank
        self.bytes_per_event = bytes_per_event
        self.buffer_bytes = buffer_bytes
        self.sion = sion
        self.amortize_fixed = amortize_fixed
        self.buffered = 0
        self.trace_bytes = 0
        self.flushes = 0
        self._opened = False

    # -- lifecycle (all generators, driven on the owning rank) --------------------

    def open(self):
        """Create the trace file (or the SIONlib task-local view)."""
        if self._opened:
            raise ConfigError("trace writer already open")
        self._opened = True
        if self.sion is not None:
            # Only the container-opening task pays the metadata transaction;
            # SionFile handles that internally.
            yield from self.sion.open_task(self.rank, self.amortize_fixed)
        else:
            yield from self.fs.metadata_op(self.amortize_fixed)

    def record(self, nevents: int = 1):
        """Account events; flush through the FS when the buffer fills."""
        if not self._opened:
            raise ConfigError("record() before open()")
        self.buffered += nevents * self.bytes_per_event
        self.trace_bytes += nevents * self.bytes_per_event
        if self.buffered >= self.buffer_bytes:
            yield from self.flush()
        else:
            yield self.fs.kernel.timeout(0.0)

    def flush(self):
        """Write the buffered bytes to the shared file system."""
        if self.buffered == 0:
            yield self.fs.kernel.timeout(0.0)
            return
        nbytes = self.buffered
        self.buffered = 0
        self.flushes += 1
        if self.sion is not None:
            yield from self.sion.write_task(self.rank, nbytes)
        else:
            yield self.fs.raw_write(nbytes)

    def close(self):
        """Flush the tail and close the file."""
        yield from self.flush()
        if self.sion is not None:
            yield from self.sion.close_task(self.rank)
        else:
            yield from self.fs.metadata_op(self.amortize_fixed)
        self._opened = False
