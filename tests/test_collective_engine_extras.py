"""Collective engine internals: release timing, payload folding edge cases."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpi import MPMDLauncher
from repro.mpi.collectives import _compute_results, _fold, _PendingOp


def _single(machine, main, nprocs, **kwargs):
    launcher = MPMDLauncher(machine=machine)
    launcher.add_program("t", nprocs=nprocs, main=main, **kwargs)
    return launcher.run()


class TestFolding:
    def test_fold_skips_none(self):
        assert _fold([1, None, 2], None) == 3

    def test_fold_all_none(self):
        assert _fold([None, None], None) is None

    def test_fold_numpy_arrays(self):
        out = _fold([np.array([1, 2]), np.array([3, 4])], None)
        assert (out == np.array([4, 6])).all()

    def test_custom_fold(self):
        assert _fold([5, 3, 9], lambda a, b: max(a, b)) == 9


class TestComputeResults:
    def _op(self, op, contribs, root=0, reduce_fn=None):
        pending = _PendingOp(op, root, reduce_fn)
        pending.contribs = dict(enumerate(contribs))
        pending.completions = {r: None for r in range(len(contribs))}
        return _compute_results(pending, len(contribs))

    def test_scatter_payload_shape_checked(self):
        with pytest.raises(MPIError):
            self._op("scatter", [["a", "b"], None, None])  # wrong length at root

    def test_scatter_none_payload_ok(self):
        out = self._op("scatter", [None, None])
        assert out == {0: None, 1: None}

    def test_alltoall_payload_shape_checked(self):
        with pytest.raises(MPIError):
            self._op("alltoall", [["x"], ["a", "b"]])

    def test_alltoall_with_missing_contributions(self):
        out = self._op("alltoall", [None, ["a", "b"]])
        assert out[0] == [None, "a"]
        assert out[1] == [None, "b"]

    def test_unknown_op_rejected(self):
        with pytest.raises(MPIError):
            self._op("gossip", [1, 2])

    def test_reduce_scatter_gives_fold_to_all(self):
        out = self._op("reduce_scatter", [1, 2, 3])
        assert out == {0: 6, 1: 6, 2: 6}


class TestReleaseSemantics:
    def test_all_ranks_released_at_same_instant(self, machine):
        release_times = []

        def main(mpi):
            yield from mpi.init()
            comm = mpi.comm_world
            yield from mpi.compute(0.01 * (comm.rank + 1))
            yield from comm.allreduce(nbytes=1024)
            release_times.append(mpi.now)
            yield from mpi.finalize()

        _single(machine, main, 6)
        assert max(release_times) - min(release_times) < 1e-12

    def test_collective_duration_exceeds_arrival_spread(self, machine):
        """Completion happens after the last arrival plus the modelled cost."""
        t_done = []

        def main(mpi):
            yield from mpi.init()
            comm = mpi.comm_world
            if comm.rank == 0:
                yield from mpi.compute(0.5)  # last arriver
            yield from comm.barrier()
            t_done.append(mpi.now)
            yield from mpi.finalize()

        _single(machine, main, 4)
        assert all(t >= 0.5 for t in t_done)

    def test_engine_cleanup_after_completion(self, machine):
        def main(mpi):
            yield from mpi.init()
            comm = mpi.comm_world
            for _ in range(5):
                yield from comm.barrier()
            assert comm.group.coll.in_flight == 0
            assert comm.group.coll.completed_ops == 5
            yield from mpi.finalize()

        _single(machine, main, 3)

    def test_interleaved_collectives_on_two_comms(self, machine):
        """Collectives on dup'ed communicators are sequenced independently."""
        out = []

        def main(mpi):
            yield from mpi.init()
            comm = mpi.comm_world
            dup = yield from comm.dup()
            a = yield from dup.allreduce(nbytes=8, payload=1)
            b = yield from comm.allreduce(nbytes=8, payload=10)
            c = yield from dup.allreduce(nbytes=8, payload=100)
            out.append((a, b, c))
            yield from mpi.finalize()

        _single(machine, main, 4)
        assert out == [(4, 40, 400)] * 4
