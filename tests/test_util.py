"""Utility layer: units, RNG derivation, stats, tables."""

import math

import pytest

from repro.errors import ConfigError
from repro.util import (
    GB,
    GIB,
    Histogram,
    KIB,
    MIB,
    RunningStats,
    SeedSequence,
    Table,
    derive_rng,
    fmt_bw,
    fmt_bytes,
    fmt_time,
    parse_size,
)


class TestUnits:
    def test_constants(self):
        assert KIB == 1024 and MIB == 1024**2 and GIB == 1024**3
        assert GB == 10**9

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("1 KB", 1000),
            ("1KiB", 1024),
            ("2.5 MB", 2_500_000),
            ("1 GiB", 1024**3),
            ("3G", 3 * 10**9),
            (4096, 4096),
            (1.5, 1),
        ],
    )
    def test_parse_size(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "abc", "12 XB", "-5 MB", -3])
    def test_parse_size_rejects(self, bad):
        with pytest.raises(ConfigError):
            parse_size(bad)

    def test_fmt_bytes_decimal(self):
        assert fmt_bytes(1.2e9) == "1.20 GB"
        assert fmt_bytes(999) == "999 B"
        assert fmt_bytes(0) == "0 B"

    def test_fmt_bytes_binary(self):
        assert fmt_bytes(1024, binary=True) == "1.00 KiB"

    def test_fmt_bytes_negative(self):
        assert fmt_bytes(-1.2e9).startswith("-")

    def test_fmt_bw(self):
        assert fmt_bw(9.85e10) == "98.50 GB/s"

    @pytest.mark.parametrize(
        "seconds,contains",
        [(0, "0 s"), (5e-9, "ns"), (5e-6, "us"), (5e-3, "ms"), (5, "s"), (300, "min"), (8000, "h")],
    )
    def test_fmt_time_units(self, seconds, contains):
        assert contains in fmt_time(seconds)


class TestSeedSequence:
    def test_deterministic(self):
        a = SeedSequence(42).child_seed("x", 1)
        b = SeedSequence(42).child_seed("x", 1)
        assert a == b

    def test_labels_independent(self):
        seq = SeedSequence(42)
        assert seq.child_seed("x") != seq.child_seed("y")

    def test_root_seed_matters(self):
        assert SeedSequence(1).child_seed("x") != SeedSequence(2).child_seed("x")

    def test_child_rngs_reproducible(self):
        r1 = derive_rng(7, "stream", 3)
        r2 = derive_rng(7, "stream", 3)
        assert [r1.random() for _ in range(5)] == [r2.random() for _ in range(5)]

    def test_child_np(self):
        g = SeedSequence(7).child_np("np")
        h = SeedSequence(7).child_np("np")
        assert (g.integers(0, 100, 10) == h.integers(0, 100, 10)).all()


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0 and s.mean == 0.0 and s.variance == 0.0

    def test_basic_moments(self):
        s = RunningStats()
        for v in [1.0, 2.0, 3.0, 4.0]:
            s.add(v)
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.total == pytest.approx(10.0)
        assert s.min == 1.0 and s.max == 4.0
        assert s.variance == pytest.approx(1.25)

    def test_merge_equals_sequential(self):
        data = [float(i * i % 17) for i in range(50)]
        whole = RunningStats()
        for v in data:
            whole.add(v)
        left, right = RunningStats(), RunningStats()
        for v in data[:20]:
            left.add(v)
        for v in data[20:]:
            right.add(v)
        left.merge(right)
        assert left.count == whole.count
        assert left.mean == pytest.approx(whole.mean)
        assert left.variance == pytest.approx(whole.variance)
        assert left.min == whole.min and left.max == whole.max

    def test_merge_empty_sides(self):
        a, b = RunningStats(), RunningStats()
        a.add(5.0)
        a.merge(b)
        assert a.count == 1
        b.merge(a)
        assert b.count == 1 and b.mean == 5.0

    def test_as_dict(self):
        s = RunningStats()
        s.add(2.0)
        d = s.as_dict()
        assert d["count"] == 1 and d["mean"] == 2.0


class TestHistogram:
    def test_binning(self):
        h = Histogram(0.0, 10.0, nbins=10)
        for v in [0.5, 1.5, 9.99]:
            h.add(v)
        assert h.counts[0] == 1 and h.counts[1] == 1 and h.counts[9] == 1

    def test_overflow_underflow(self):
        h = Histogram(0.0, 1.0, nbins=4)
        h.add(-1.0)
        h.add(2.0)
        assert h.under == 1 and h.over == 1 and h.total == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, nbins=0)

    def test_bin_edges(self):
        h = Histogram(0.0, 1.0, nbins=4)
        assert h.bin_edges() == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])


class TestTable:
    def test_render_aligns_columns(self):
        t = Table(["name", "value"], title="demo")
        t.add_row("alpha", 1.5)
        t.add_row("b", 20000.123)
        out = t.render()
        assert "demo" in out
        lines = out.splitlines()
        assert len({len(line) for line in lines[1:3]}) == 1  # header == rule width

    def test_row_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_to_csv(self):
        t = Table(["a", "b"])
        t.add_row(1, 2)
        assert t.to_csv() == "a,b\n1,2"

    def test_extend(self):
        t = Table(["a"])
        t.extend([[1], [2]])
        assert len(t.rows) == 2

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row(0.000001234)
        t.add_row(123456.789)
        t.add_row(0)
        csv = t.to_csv().splitlines()
        assert csv[1] == "1.234e-06"
        assert csv[3] == "0"
