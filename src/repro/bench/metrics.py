"""Metrics bench: time-resolved POP efficiency over the coupled workload.

Runs the fig14-style coupled workload (an instrumented SP kernel streaming
into the analyzer partition) once per writer/reader ratio with the online
:class:`~repro.telemetry.popmetrics.PopMetricsEngine` attached, and
reports the windowed POP metrics per configuration: parallel efficiency,
load balance, communication efficiency, serialization efficiency and the
instrumentation share, plus the window/phase counts the change-point
detector produced.  One row per ratio, so ``BENCH_metrics.json`` *is* the
efficiency-versus-analyzer-sizing document.

Internal consistency is asserted on every row before it is emitted:

* the POP identity must hold: ``PE = LB x CommE`` (to 1e-9);
* the windowed accounting must telescope — metrics recombined from the
  per-phase per-rank sums must match the engine's end-of-run metrics to
  1e-6;
* the engine must actually have windowed the run (``windows > 0``,
  ``phases >= 1``);

and the first configuration is run twice — metrics on and off — asserting
bit-identical application walltime and event counts (the observer bar).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.nas import SP
from repro.core.session import CouplingSession
from repro.errors import ConfigError
from repro.instrument.overhead import InstrumentationCost
from repro.network.machine import MachineSpec, TERA100
from repro.telemetry import Telemetry
from repro.telemetry.popmetrics import (
    PopConfig,
    SUM_KEYS,
    metrics_from_sums,
)
from repro.util.tables import Table

#: writer/reader ratios swept (paper Figure 14's axis)
RATIOS = (4.0, 2.0, 1.0)

#: metric window in virtual seconds (≈ 100 windows over the small workload)
WINDOW_S = 0.01

#: telescoping tolerance of the acceptance gate
TELESCOPE_TOL = 1e-6


@dataclass
class MetricsPoint:
    """One analyzer ratio on the coupled workload."""

    ratio: float
    readers: int
    windows: int
    phases: int
    pe: float
    load_balance: float
    comm_eff: float
    ser_eff: float
    instr_share: float
    walltime_s: float


@dataclass
class MetricsResult:
    """POP-efficiency sweep over analyzer sizing."""

    machine: str
    scale: str
    seed: int
    points: list[MetricsPoint] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            [
                "ratio", "readers", "windows", "phases", "pe",
                "load_balance", "comm_eff", "ser_eff", "instr_share",
                "walltime_s",
            ],
            title=f"Time-resolved POP efficiency ({self.machine}, scale={self.scale})",
        )
        for p in self.points:
            t.add_row(
                f"{p.ratio:g}", p.readers, p.windows, p.phases,
                f"{p.pe:.6f}", f"{p.load_balance:.6f}", f"{p.comm_eff:.6f}",
                f"{p.ser_eff:.6f}", f"{p.instr_share:.6f}",
                f"{p.walltime_s:.6f}",
            )
        return t


def _workload(scale: str):
    if scale == "paper":
        return SP(64, "C", iterations=3)
    if scale == "small":
        return SP(16, "C", iterations=3)
    raise ConfigError(f"unknown scale {scale!r}")


def recombine_phases(summary: dict) -> dict[str, float]:
    """End-of-run metrics recomputed from the per-phase per-rank sums.

    This is the telescoping check in one place: phases partition the run,
    their per-rank second sums are additive, so recombining them must
    reproduce the engine's own end-of-run metrics exactly.
    """
    combined: dict[str, dict[str, float]] = {}
    for phase in summary["phases"]:
        for rank_key, sums in phase["ranks"].items():
            entry = combined.setdefault(rank_key, {key: 0.0 for key in SUM_KEYS})
            for key in SUM_KEYS:
                entry[key] += sums[key]
    return metrics_from_sums(combined)


def _gate(summary: dict, label: str) -> None:
    if summary["windows"] <= 0 or not summary["phases"]:
        raise ConfigError(f"{label}: engine closed no windows/phases")
    eor = summary["end_of_run"]
    identity = eor["load_balance"] * eor["communication_efficiency"]
    if abs(identity - eor["parallel_efficiency"]) > 1e-9:
        raise ConfigError(
            f"{label}: POP identity broken: LB*CommE={identity} "
            f"!= PE={eor['parallel_efficiency']}"
        )
    recombined = recombine_phases(summary)
    for key, value in recombined.items():
        if abs(value - eor[key]) > TELESCOPE_TOL:
            raise ConfigError(
                f"{label}: telescoping broken on {key}: "
                f"phases give {value}, end of run {eor[key]}"
            )


def metrics_timeline(
    scale: str = "small",
    machine: MachineSpec = TERA100,
    seed: int = 0,
    telemetry: Telemetry | None = None,
    ratios: tuple[float, ...] = RATIOS,
    ndjson_dir: str | None = None,
) -> MetricsResult:
    """Sweep analyzer ratios with the online POP-metrics engine attached.

    ``ndjson_dir`` (set by ``--json``) streams the first configuration's
    window/phase records to ``BENCH_metrics.ndjson`` in that directory —
    the artifact CI uploads for the visual-analytics frontend.
    """
    kernel = _workload(scale)
    result = MetricsResult(machine=machine.name, scale=scale, seed=seed)
    # Small packs so every writer streams continuously (as in the codec
    # bench): backpressure and analyzer load must be visible per window.
    cost = InstrumentationCost(block_size=4096, na_buffers=2)
    reference = None
    for index, ratio in enumerate(ratios):
        session = CouplingSession(
            machine=machine,
            seed=seed,
            instrumentation=cost,
            telemetry=telemetry if telemetry is not None else Telemetry(),
        )
        name = session.add_application(kernel)
        readers = session.set_analyzer(ratio=ratio)
        stream_path = None
        if index == 0 and ndjson_dir is not None:
            stream_path = str(Path(ndjson_dir) / "BENCH_metrics.ndjson")
        session.enable_pop_metrics(PopConfig(window=WINDOW_S), stream=stream_path)
        run = session.run()
        app = run.app(name)
        summary = run.efficiency
        label = f"ratio {ratio:g}"
        _gate(summary, label)
        if index == 0:
            reference = (app.walltime, app.events)
            # The observer bar: the same configuration without the engine
            # must produce bit-identical results.
            plain = CouplingSession(
                machine=machine, seed=seed, instrumentation=cost,
                telemetry=Telemetry(),
            )
            plain_name = plain.add_application(kernel)
            plain.set_analyzer(ratio=ratio)
            plain_run = plain.run()
            plain_app = plain_run.app(plain_name)
            if (plain_app.walltime, plain_app.events) != reference:
                raise ConfigError(
                    f"{label}: metrics engine perturbed the run: "
                    f"{plain_app.walltime} != {reference[0]}"
                )
        eor = summary["end_of_run"]
        result.points.append(
            MetricsPoint(
                ratio=ratio,
                readers=readers,
                windows=summary["windows"],
                phases=len(summary["phases"]),
                pe=eor["parallel_efficiency"],
                load_balance=eor["load_balance"],
                comm_eff=eor["communication_efficiency"],
                ser_eff=eor["serialization_efficiency"],
                instr_share=eor["instrumentation_share"],
                walltime_s=app.walltime,
            )
        )
    return result
