"""Self-telemetry: the measurement system measuring itself.

The reproduction's thesis is that performance measurement should be online
and file-system-free — this package applies the same standard to the
simulator's own pipelines.  A :class:`Telemetry` instance carries counters,
gauges and histograms stamped in **virtual kernel time**, plus a span
tracer, and exports either a Chrome trace-event JSON (one process row per
simulated rank; open in Perfetto or ``chrome://tracing``) or JSONL.

Telemetry is off by default everywhere (:data:`NULL_TELEMETRY`, a shared
no-op registry) and costs one branch per instrumentation point when
disabled.  Enable it by passing a live instance down the stack::

    from repro import CouplingSession
    from repro.telemetry import Telemetry

    tel = Telemetry()
    session = CouplingSession(seed=1, telemetry=tel)
    ...
    tel.write_chrome_trace("session.trace.json")
"""

from repro.telemetry.core import KERNEL_PID, NULL_TELEMETRY, Telemetry, rank_pid
from repro.telemetry.hostprof import (
    HOSTPROF_SCHEMA,
    NULL_HOSTPROF,
    HostProfiler,
    HostTimer,
    fake_host_clock,
    host_environment,
    host_now,
    set_host_clock,
)
from repro.telemetry.flow import (
    critical_path,
    stage_stats,
    summarize_flows,
    waterfall,
    watermarks,
)
from repro.telemetry.provenance import (
    STAGES,
    FlowRecord,
    FlowRegistry,
    make_flow_id,
    split_flow_id,
)
from repro.telemetry.monitor import (
    WATCHED_SERIES,
    HealthAlert,
    HealthMonitor,
    MonitorConfig,
)
from repro.telemetry.timeline import CUMULATIVE, LEVEL, Timeline, TimeSeries
from repro.telemetry.export import (
    EXPORTERS,
    TELEMETRY_SCHEMA,
    ChromeTraceExporter,
    JSONLExporter,
    chrome_trace_dict,
    jsonl_records,
)
from repro.telemetry.popmetrics import (
    METRIC_KEYS,
    PopConfig,
    PopMetricsEngine,
    metrics_from_sums,
)
from repro.telemetry.stream_export import (
    METRICS_SCHEMA,
    MetricsStreamWriter,
    iter_metrics_stream,
    read_metrics_stream,
)
from repro.telemetry.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    HistogramMetric,
)
from repro.telemetry.spans import NULL_SPAN, Span

__all__ = [
    "Telemetry",
    "HostProfiler",
    "HostTimer",
    "NULL_HOSTPROF",
    "HOSTPROF_SCHEMA",
    "host_now",
    "set_host_clock",
    "fake_host_clock",
    "host_environment",
    "FlowRegistry",
    "FlowRecord",
    "STAGES",
    "make_flow_id",
    "split_flow_id",
    "summarize_flows",
    "stage_stats",
    "critical_path",
    "watermarks",
    "waterfall",
    "Timeline",
    "TimeSeries",
    "CUMULATIVE",
    "LEVEL",
    "HealthMonitor",
    "HealthAlert",
    "MonitorConfig",
    "WATCHED_SERIES",
    "NULL_TELEMETRY",
    "KERNEL_PID",
    "rank_pid",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "Span",
    "NULL_SPAN",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "EXPORTERS",
    "TELEMETRY_SCHEMA",
    "ChromeTraceExporter",
    "JSONLExporter",
    "chrome_trace_dict",
    "jsonl_records",
    "PopMetricsEngine",
    "PopConfig",
    "METRIC_KEYS",
    "metrics_from_sums",
    "MetricsStreamWriter",
    "METRICS_SCHEMA",
    "iter_metrics_stream",
    "read_metrics_stream",
]
