#!/usr/bin/env python
"""General code coupling with VMPI: an ocean-atmosphere style exchange.

The paper's coupling layer is not specific to instrumentation: it is a
generic *code coupling* mechanism (Section III-A shows the generic N-to-one
mapping of Figure 10).  This example couples two simulated physics codes of
different sizes through VMPI maps and streams — each atmosphere rank
streams its boundary fluxes to its mapped ocean rank every step, while both
codes keep their own private MPI_COMM_WORLD thanks to virtualization.

Run:  python examples/code_coupling.py
"""

from repro.util.units import KIB, fmt_time
from repro.vmpi import (
    EOF,
    ROUND_ROBIN,
    VMPIMap,
    VMPIStream,
    map_partitions,
)
from repro.vmpi.virtualization import VirtualizedLauncher

STEPS = 20
FLUX_BYTES = 256 * KIB


def atmosphere(mpi, stats):
    """The fine-grid code: computes and streams boundary fluxes."""
    yield from mpi.init()
    comm = mpi.comm_world

    vmap = VMPIMap()
    yield from map_partitions(mpi, vmap, "ocean", policy=ROUND_ROBIN)
    stream = VMPIStream(block_size=FLUX_BYTES)
    yield from stream.open_map(mpi, vmap, "w")

    for step in range(STEPS):
        yield from mpi.compute(2e-3)  # dynamics + physics
        # Halo exchange with atmosphere neighbours (its own world).
        partner = (comm.rank + 1) % comm.size
        yield from comm.sendrecv(partner, send_nbytes=64 * KIB, source=(comm.rank - 1) % comm.size)
        # Stream the coupling fluxes down to the ocean.
        yield from stream.write(payload=("flux", comm.rank, step))
        # Global diagnostics stay inside the virtualized world.
        yield from comm.allreduce(nbytes=8)
    yield from stream.close()
    stats["atm_done"] = mpi.now
    yield from mpi.finalize()


def ocean(mpi, stats):
    """The coarse-grid code: consumes fluxes from its mapped partners."""
    yield from mpi.init()
    comm = mpi.comm_world

    vmap = VMPIMap()
    yield from map_partitions(mpi, vmap, "atmosphere", policy=ROUND_ROBIN)
    stream = VMPIStream(block_size=FLUX_BYTES)
    yield from stream.open_map(mpi, vmap, "r")

    received = 0
    while True:
        nbytes, payload = yield from stream.read()
        if nbytes == EOF:
            break
        received += 1
        yield from mpi.compute(1e-3)  # assimilate the flux
    total = yield from comm.allreduce(nbytes=8, payload=received)
    if comm.rank == 0:
        stats["fluxes"] = total
        stats["ocean_done"] = mpi.now
    yield from mpi.finalize()


def main() -> None:
    stats: dict = {}
    launcher = VirtualizedLauncher(seed=3)  # Tera 100 model
    launcher.add_program("atmosphere", nprocs=48, main=atmosphere, stats=stats)
    launcher.add_program("ocean", nprocs=12, main=ocean, stats=stats)
    world = launcher.run()

    expected = 48 * STEPS
    print(f"coupled {expected} flux blocks ({stats['fluxes']} received)")
    assert stats["fluxes"] == expected
    print(f"atmosphere finished at {fmt_time(stats['atm_done'])}")
    print(f"ocean finished at      {fmt_time(stats['ocean_done'])}")
    print(f"atmosphere wall-time   {fmt_time(world.app_walltime('atmosphere'))}")
    print(f"ocean wall-time        {fmt_time(world.app_walltime('ocean'))}")
    print("each code ran in its own MPI_COMM_WORLD; coupling used the universe")


if __name__ == "__main__":
    main()
