"""VMPI_Map: partition-to-partition process mapping (paper Sec. III-A, Fig. 7-8).

When two partitions are mapped, the larger becomes the *slave* and the
smaller the *master*.  Every slave rank sends its global rank to the master
partition's root (the *pivot*); the pivot assigns a master-partition local
rank per the requested policy, associates local and remote ranks both-ways,
and finally broadcasts the end of the mapping to every participant (each
participant receives exactly one notification carrying its complete entry
list, which doubles as the end-of-mapping synchronization).  The three
default policies are round-robin, random and fixed (paper Figure 8);
user-defined policies map a slave index to a master local rank.

Maps are *additive*: calling :func:`map_partitions` repeatedly appends
entries — this is how the analyzer partition maps itself to N application
partitions (paper Figure 10/12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import MappingError
from repro.mpi.datatypes import ANY_SOURCE
from repro.mpi.world import PartitionInfo, ProgramAPI
from repro.telemetry import rank_pid
from repro.util.rng import derive_rng

# Reserved tag space on the universe communicator.  Tags encode the mapping
# pair so that concurrent mappings between different partition pairs never
# cross-match.
_TAG_BASE = 700_000
_MAX_PARTITIONS = 256


def _pair_tag(kind: int, master_idx: int, slave_idx: int) -> int:
    return _TAG_BASE + ((kind * _MAX_PARTITIONS) + master_idx) * _MAX_PARTITIONS + slave_idx


_KIND_REQ = 0
_KIND_NOTIFY = 1


@dataclass(frozen=True)
class MapPolicy:
    """A mapping policy: assigns each slave index a master local rank."""

    name: str
    fn: Callable[[int, int, int], int]  # (slave_index, master_size, seed) -> local rank

    def assign(self, slave_index: int, master_size: int, seed: int) -> int:
        local = self.fn(slave_index, master_size, seed)
        if not (0 <= local < master_size):
            raise MappingError(
                f"policy {self.name!r} returned {local} for master of {master_size}"
            )
        return local


ROUND_ROBIN = MapPolicy("round_robin", lambda i, m, s: i % m)
FIXED = MapPolicy("fixed", lambda i, m, s: 0)
RANDOM = MapPolicy(
    "random", lambda i, m, s: derive_rng(s, "vmpi-map", i).randrange(m)
)


def user_policy(fn: Callable[[int, int], int], name: str = "user") -> MapPolicy:
    """Wrap a user function ``(slave_index, master_size) -> local rank``."""
    return MapPolicy(name, lambda i, m, s: fn(i, m))


@dataclass
class VMPIMap:
    """Per-rank mapping result: the global ranks of the mapped peers.

    ``entries`` preserves append order; ``by_partition`` groups peers by the
    remote partition index (useful for multi-instrumentation dispatch).
    """

    entries: list[int] = field(default_factory=list)
    by_partition: dict[int, list[int]] = field(default_factory=dict)

    def clear(self) -> None:
        """``VMPI_Map_clear``."""
        self.entries.clear()
        self.by_partition.clear()

    def add(self, global_rank: int, partition_index: int) -> None:
        self.entries.append(global_rank)
        self.by_partition.setdefault(partition_index, []).append(global_rank)

    def __len__(self) -> int:
        return len(self.entries)


def remap_orphans(
    orphans: list[int], survivors: list[int]
) -> dict[int, int]:
    """Reassign orphaned mapped ranks onto surviving peers (failover).

    When an analyzer rank dies, the instrumented ranks it served become
    orphans; this computes the degraded mapping — deterministic round-robin
    of the sorted orphans over the sorted survivors — used by fault handling
    to re-route streams.  Returns ``{orphan_global: survivor_global}``.
    """
    if not survivors:
        raise MappingError("no surviving ranks to remap orphans onto")
    targets = sorted(survivors)
    return {
        orphan: targets[i % len(targets)]
        for i, orphan in enumerate(sorted(orphans))
    }


def map_partitions(
    mpi: ProgramAPI,
    vmap: VMPIMap,
    target: PartitionInfo | str | int,
    policy: MapPolicy = ROUND_ROBIN,
):
    """Generator: map the caller's partition to ``target`` (``VMPI_Map_partitions``).

    Every rank of *both* partitions must call this with the same target and
    policy; matched entries are appended to ``vmap`` (additive semantics).
    """
    world = mpi.ctx.world
    mine = mpi.partition
    if isinstance(target, str):
        found = world.partition_by_name(target)
        if found is None:
            raise MappingError(f"no partition named {target!r}")
        target = found
    elif isinstance(target, int):
        if not (0 <= target < len(world.partitions)):
            raise MappingError(f"no partition with index {target}")
        target = world.partitions[target]
    if target.index == mine.index:
        raise MappingError(f"cannot map partition {mine.name!r} to itself")
    if max(target.index, mine.index) >= _MAX_PARTITIONS:
        raise MappingError(f"partition index exceeds tag space ({_MAX_PARTITIONS})")

    # The larger partition is the slave; ties break toward the lower index.
    if mine.size > target.size or (mine.size == target.size and mine.index > target.index):
        master, slave = target, mine
        i_am_master = False
    else:
        master, slave = mine, target
        i_am_master = True

    universe = mpi.comm_universe
    pivot = master.first_global_rank  # master partition root, globally
    tag_req = _pair_tag(_KIND_REQ, master.index, slave.index)
    tag_notify = _pair_tag(_KIND_NOTIFY, master.index, slave.index)
    my_global = mpi.ctx.global_rank
    ctx = mpi.ctx
    tel = ctx.telemetry
    span = (
        tel.span(
            "vmpi.map_partitions",
            pid=rank_pid(my_global),
            cat="vmpi",
            args={"master": master.name, "slave": slave.name, "policy": policy.name},
        )
        if tel.enabled
        else None
    )

    if my_global == pivot:
        yield from _run_pivot(mpi, vmap, master, slave, policy, tag_req, tag_notify)
        if span is not None:
            span.end(role="pivot")
        return

    if not i_am_master:
        # Slave: announce myself to the pivot.
        yield from universe._raw_isend(pivot, nbytes=4, tag=tag_req, payload=my_global)
    # Everyone (but the pivot) blocks on exactly one notification message.
    status = yield ctx.mailbox.post(universe.id, ANY_SOURCE, tag_notify, 0.0)
    for peer_global, partition_index in status.payload:
        vmap.add(peer_global, partition_index)
    if span is not None:
        span.end(entries=len(status.payload))


def _run_pivot(
    mpi: ProgramAPI,
    vmap: VMPIMap,
    master: PartitionInfo,
    slave: PartitionInfo,
    policy: MapPolicy,
    tag_req: int,
    tag_notify: int,
):
    """The master-root side: collect requests, assign, notify everyone."""
    universe = mpi.comm_universe
    ctx = mpi.ctx
    seed = ctx.world.seed
    tel = ctx.telemetry
    span = (
        tel.span(
            "vmpi.map_pivot",
            pid=rank_pid(ctx.global_rank),
            cat="vmpi",
            args={"slave_size": slave.size},
        )
        if tel.enabled
        else None
    )
    per_peer: dict[int, list[tuple[int, int]]] = {
        g: [] for g in list(master.global_ranks) + list(slave.global_ranks)
    }
    for _ in range(slave.size):
        status = yield ctx.mailbox.post(universe.id, ANY_SOURCE, tag_req, 0.0)
        if tel.enabled:
            tel.counter("vmpi.map_requests").inc()
        slave_global = status.payload
        if slave_global not in per_peer:
            raise MappingError(
                f"map request from rank {slave_global} outside slave partition"
            )
        slave_index = slave_global - slave.first_global_rank
        local = policy.assign(slave_index, master.size, seed)
        master_global = master.first_global_rank + local
        per_peer[slave_global].append((master_global, master.index))
        per_peer[master_global].append((slave_global, slave.index))
    # One notification per participant; doubles as the end-of-mapping
    # broadcast of paper Figure 7.
    for peer, entries in per_peer.items():
        if peer == ctx.global_rank:
            for peer_global, partition_index in entries:
                vmap.add(peer_global, partition_index)
        else:
            nbytes = max(4, 8 * len(entries))
            yield from universe._raw_isend(
                peer, nbytes=nbytes, tag=tag_notify, payload=tuple(entries)
            )
    if span is not None:
        span.end()
