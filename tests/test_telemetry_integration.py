"""Telemetry wired through the stack: kernel, streams, blackboard, bench.

The acceptance path of the subsystem: a real coupled run with telemetry
enabled produces a Chrome trace with spans from every instrumented layer,
while the disabled default changes nothing about simulation results.
"""

import json

import pytest

from repro.apps import nas_kernel
from repro.bench.figures import _stream_point
from repro.blackboard.board import Blackboard
from repro.blackboard.workers import ThreadPool
from repro.core.session import CouplingSession
from repro.network.machine import small_test_machine
from repro.simt import Kernel
from repro.telemetry import KERNEL_PID, NULL_TELEMETRY, Telemetry, rank_pid
from repro.util.units import MIB


def _sleeper(k, delay, steps):
    for _ in range(steps):
        yield k.timeout(delay)


class TestKernelTelemetry:
    def test_default_kernel_shares_null_telemetry(self):
        assert Kernel().telemetry is NULL_TELEMETRY

    def test_trace_flag_records_instants_without_printing(self, capsys):
        kernel = Kernel(trace=True)
        kernel.spawn(_sleeper(kernel, 1.0, 3), name="p")
        kernel.run()
        assert capsys.readouterr().out == ""
        fires = [i for i in kernel.telemetry.instants if i["name"] == "kernel.fire"]
        assert len(fires) == kernel.events_dispatched
        assert all(i["pid"] == KERNEL_PID for i in fires)

    def test_dispatch_counter_and_heap_gauge(self):
        tel = Telemetry()
        kernel = Kernel(telemetry=tel)
        kernel.spawn(_sleeper(kernel, 1.0, 4), name="p")
        kernel.run()
        assert tel.counters["kernel.events_dispatched"].value == kernel.events_dispatched
        assert ("kernel.heap_depth", KERNEL_PID) in tel.gauges

    def test_run_span_covers_virtual_time(self):
        tel = Telemetry()
        kernel = Kernel(telemetry=tel)
        kernel.spawn(_sleeper(kernel, 2.0, 3), name="p")
        kernel.run()
        (run_span,) = [s for s in tel.spans if s.name == "kernel.run"]
        assert run_span.t0 == 0.0
        assert run_span.t1 == kernel.now == 6.0

    def test_clock_is_virtual_time(self):
        tel = Telemetry()
        kernel = Kernel(telemetry=tel)
        kernel.spawn(_sleeper(kernel, 5.0, 1), name="p")
        kernel.run()
        assert tel.now() == kernel.now == 5.0


@pytest.fixture(scope="module")
def coupled_run():
    """One small instrumented coupling shared by the assertions below."""
    tel = Telemetry()
    session = CouplingSession(
        machine=small_test_machine(nodes=32, cores_per_node=4),
        seed=3,
        telemetry=tel,
    )
    session.add_application(nas_kernel("CG", 16, "C", iterations=2))
    session.set_analyzer(ratio=1.0)
    result = session.run()
    return tel, result


class TestCoupledRunTelemetry:
    def test_spans_from_all_layers(self, coupled_run):
        tel, _result = coupled_run
        names = {s.name for s in tel.spans}
        assert "kernel.run" in names  # kernel layer
        assert {"stream.write", "stream.read"} <= names  # stream layer
        assert "blackboard.job" in names  # blackboard layer
        assert "vmpi.map_partitions" in names
        assert "analysis.block" in names

    def test_span_times_monotone_and_within_run(self, coupled_run):
        tel, _result = coupled_run
        (run_span,) = [s for s in tel.spans if s.name == "kernel.run"]
        for s in tel.spans:
            assert s.t1 is not None and s.t0 <= s.t1
            assert run_span.t0 <= s.t0 and s.t1 <= run_span.t1

    def test_chrome_trace_loads_and_has_rank_rows(self, coupled_run, tmp_path):
        tel, _result = coupled_run
        path = tmp_path / "run.trace.json"
        tel.write_chrome_trace(path)
        trace = json.load(open(path))
        events = trace["traceEvents"]
        span_pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert KERNEL_PID in span_pids  # the kernel row
        assert span_pids - {KERNEL_PID}  # at least one simulated-rank row
        names = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names[KERNEL_PID] == "simulation kernel"
        assert any(label.startswith("Analyzer[") for label in names.values())

    def test_report_carries_telemetry_section(self, coupled_run):
        tel, result = coupled_run
        assert result.report.telemetry == tel.summary()
        rendered = result.report.render()
        assert "## Self-telemetry (measurement pipeline)" in rendered
        assert "kernel events dispatched" in rendered

    def test_stream_stats_in_analyzer_stats(self, coupled_run):
        _tel, result = coupled_run
        stream = result.analyzer_stats["stream"]
        assert stream["blocks_read"] > 0
        assert stream["bytes_read"] > 0
        assert stream["closed"] is True
        assert "eagain_returns" in stream and "write_stall_s" in stream


class TestZeroCostWhenDisabled:
    def test_stream_point_identical_with_and_without_telemetry(self):
        machine = small_test_machine(nodes=64, cores_per_node=4)
        plain = _stream_point(machine, 8, 4, 4 * MIB, MIB, 0)
        tel = Telemetry()
        instrumented = _stream_point(machine, 8, 4, 4 * MIB, MIB, 0, telemetry=tel)
        # Telemetry never touches virtual time: bit-identical results.
        assert instrumented == plain
        assert instrumented["throughput"] == plain["throughput"]
        assert {s.name for s in tel.spans} >= {"stream.write", "stream.read"}

    def test_disabled_session_records_nothing(self):
        session = CouplingSession(
            machine=small_test_machine(nodes=16, cores_per_node=4), seed=0
        )
        session.add_application(nas_kernel("CG", 4, "C", iterations=1))
        session.set_analyzer(ratio=1.0)
        result = session.run()
        assert session.telemetry is NULL_TELEMETRY
        assert NULL_TELEMETRY.spans == [] and NULL_TELEMETRY.counters == {}
        assert result.report is not None
        assert result.report.telemetry is None

    def test_stream_stats_available_with_telemetry_off(self):
        session = CouplingSession(
            machine=small_test_machine(nodes=16, cores_per_node=4), seed=0
        )
        session.add_application(nas_kernel("CG", 4, "C", iterations=1))
        session.set_analyzer(ratio=1.0)
        stream = session.run().analyzer_stats["stream"]
        assert stream["bytes_read"] > 0
        assert stream["eagain_returns"] >= 0
        assert stream["write_buffers_in_flight"] == 0  # drained at close


class TestBlackboardWorkerTelemetry:
    def _board_with_work(self, tel):
        board = Blackboard(nqueues=4, seed=0, telemetry=tel)
        data_id = board.register_type("datum")
        hits = []
        board.register_ks("KS_count", [data_id], lambda b, es: hits.extend(es))
        for i in range(50):
            board.submit(data_id, i, size=8)
        return board, hits

    def test_worker_utilization_reaches_headline(self):
        tel = Telemetry()  # host clock: standalone threads, no kernel
        board, hits = self._board_with_work(tel)
        with ThreadPool(board, nworkers=2, seed=0):
            pass  # context manager drains then stops
        assert len(hits) == 50
        util = tel.headline()["worker_utilization"]
        assert util is not None and 0.0 < util <= 1.0
        assert tel.counters["blackboard.jobs_executed"].value > 0

    def test_lock_contention_counter_exists_when_enabled(self):
        tel = Telemetry()
        board, _hits = self._board_with_work(tel)
        with ThreadPool(board, nworkers=4, seed=1):
            pass
        # Contention is workload-dependent; the always-on mirror must agree.
        counter = tel.counters.get("blackboard.lock_contention")
        observed = counter.value if counter is not None else 0
        assert board.queues.lock_failures == observed
        assert board.stats()["lock_failures"] == board.queues.lock_failures


class TestBenchCLI:
    def test_json_and_trace_artifacts(self, tmp_path, monkeypatch):
        from repro.bench import __main__ as bench_main
        from repro.util.tables import Table

        calls = {}

        def fake_driver(scale="small", seed=0, telemetry=None):
            calls["telemetry"] = telemetry
            if telemetry is not None:
                telemetry.counter("kernel.events_dispatched").inc(7)
                telemetry.span("kernel.run").end()
            t = Table(["a", "b"], title="stub")
            t.add_row(1, 2)

            class R:
                def table(self):
                    return t

            return R()

        monkeypatch.setitem(bench_main._DRIVERS, "fig14", fake_driver)
        rc = bench_main.main(
            ["fig14", "--telemetry", "--outdir", str(tmp_path)]
        )
        assert rc == 0
        assert isinstance(calls["telemetry"], Telemetry)

        payload = json.loads((tmp_path / "BENCH_fig14.json").read_text())
        assert payload["experiment"] == "fig14"
        assert payload["columns"] == ["a", "b"]
        assert payload["rows"] == [["1", "2"]]  # Table stores rendered cells
        assert payload["telemetry"]["headline"]["events_dispatched"] == 7

        trace = json.loads((tmp_path / "BENCH_fig14.trace.json").read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_json_without_telemetry(self, tmp_path, monkeypatch):
        from repro.bench import __main__ as bench_main
        from repro.util.tables import Table

        def fake_driver(scale="small", seed=0, telemetry=None):
            assert telemetry is None
            t = Table(["x"], title="stub")
            t.add_row(9)

            class R:
                def table(self):
                    return t

            return R()

        monkeypatch.setitem(bench_main._DRIVERS, "fig15", fake_driver)
        rc = bench_main.main(["fig15", "--json", "--outdir", str(tmp_path)])
        assert rc == 0
        payload = json.loads((tmp_path / "BENCH_fig15.json").read_text())
        assert "telemetry" not in payload
        assert not (tmp_path / "BENCH_fig15.trace.json").exists()
