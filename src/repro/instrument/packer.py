"""Event packs: the ~1 MB blocks travelling through VMPI streams.

Wire layout::

    u32 magic | u16 version | u16 app_id | u32 rank | u32 count |
    <count records> | u32 crc32 [| provenance trailer]

``app_id`` is the partition index of the producing application (the
multi-level blackboard dispatch key), ``rank`` its virtual (per-application)
rank.  The trailing CRC-32 covers header + records, so a pack corrupted in
flight is rejected by :func:`verify_pack` / :func:`decode_pack` instead of
poisoning the analyzer.  The trailer is accounting-exempt: pack capacity,
``size_bytes`` and the modelled stream volume all budget header + records
only, keeping simulated figures independent of the integrity envelope.

When causal flow tracing is on (see :mod:`repro.telemetry.provenance`), a
second fixed-size trailer rides *after* the CRC::

    u64 flow_id | u16 origin_app | u32 origin_rank | f64 t_seal | u32 prov_magic

It identifies the pack's flow across process boundaries — the analyzer
recovers the flow id from the wire bytes, not from shared Python state.
Like the CRC it is accounting-exempt (:func:`pack_content_size` strips
both), and it is *outside* the checksum so hop stamping can never be
confused with payload corruption.  Packs without the trailer (provenance
off, or an unsampled flow) are byte-identical to the pre-provenance
format; presence is detected by the trailing magic, which a CRC word
collides with at odds of 2^-32 — negligible for simulation artefacts.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import PackFormatError
from repro.instrument.events import EVENT_RECORD_SIZE, decode_events
from repro.mpi.pmpi import CallRecord
from repro.instrument.events import encode_event

_MAGIC = 0x45564E54  # "EVNT"
_VERSION = 1
_HEADER_FMT = "<IHHII"
PACK_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
assert PACK_HEADER_SIZE == 16
_TRAILER_FMT = "<I"
PACK_TRAILER_SIZE = struct.calcsize(_TRAILER_FMT)
assert PACK_TRAILER_SIZE == 4
_PROV_MAGIC = 0x50524F56  # "PROV"
_PROV_FMT = "<QHIdI"
PACK_PROV_SIZE = struct.calcsize(_PROV_FMT)
assert PACK_PROV_SIZE == 26


@dataclass(frozen=True)
class PackHeader:
    app_id: int
    rank: int
    count: int

    @property
    def payload_bytes(self) -> int:
        return self.count * EVENT_RECORD_SIZE


class EventPackBuilder:
    """Accumulates encoded events until the block budget is reached."""

    def __init__(self, app_id: int, rank: int, capacity_bytes: int = 1024 * 1024):
        min_capacity = PACK_HEADER_SIZE + EVENT_RECORD_SIZE
        if capacity_bytes < min_capacity:
            raise PackFormatError(
                f"pack capacity {capacity_bytes} below minimum {min_capacity}"
            )
        if not (0 <= app_id < 2**16):
            raise PackFormatError(f"app_id {app_id} outside u16")
        if not (0 <= rank < 2**32):
            raise PackFormatError(f"rank {rank} outside u32")
        self.app_id = app_id
        self.rank = rank
        self.capacity_bytes = capacity_bytes
        self.max_records = (capacity_bytes - PACK_HEADER_SIZE) // EVENT_RECORD_SIZE
        self._records: list[bytes] = []
        self.total_events = 0
        self.packs_emitted = 0

    @property
    def count(self) -> int:
        return len(self._records)

    @property
    def full(self) -> bool:
        return len(self._records) >= self.max_records

    @property
    def size_bytes(self) -> int:
        return PACK_HEADER_SIZE + len(self._records) * EVENT_RECORD_SIZE

    def add(self, record: CallRecord) -> bool:
        """Append one event; returns True when the pack is now full."""
        self._records.append(encode_event(record))
        self.total_events += 1
        return self.full

    def emit(self) -> bytes:
        """Serialize and reset; empty packs serialize with count == 0."""
        header = struct.pack(
            _HEADER_FMT, _MAGIC, _VERSION, self.app_id, self.rank, len(self._records)
        )
        content = header + b"".join(self._records)
        blob = content + struct.pack(_TRAILER_FMT, zlib.crc32(content))
        self._records.clear()
        self.packs_emitted += 1
        return blob


@dataclass(frozen=True)
class PackProvenance:
    """The compact flow stamp carried by a provenance-traced pack."""

    flow_id: int
    app_id: int
    rank: int
    t_seal: float


def attach_provenance(
    blob: bytes, flow_id: int, app_id: int, rank: int, t_seal: float
) -> bytes:
    """Append a provenance trailer to a sealed pack (after the CRC)."""
    return blob + struct.pack(_PROV_FMT, flow_id, app_id, rank, t_seal, _PROV_MAGIC)


def peek_provenance(blob) -> PackProvenance | None:
    """Read a pack's provenance trailer without touching the payload.

    Returns ``None`` for anything that is not a provenance-stamped pack —
    non-bytes payloads, short blobs, or packs without the trailer — so hot
    paths can call it unconditionally on whatever travels a stream.
    """
    try:
        view = memoryview(blob)
    except TypeError:
        return None
    if len(view) < PACK_HEADER_SIZE + PACK_TRAILER_SIZE + PACK_PROV_SIZE:
        return None
    flow_id, app_id, rank, t_seal, magic = struct.unpack_from(
        _PROV_FMT, view, len(view) - PACK_PROV_SIZE
    )
    if magic != _PROV_MAGIC:
        return None
    return PackProvenance(flow_id=flow_id, app_id=app_id, rank=rank, t_seal=t_seal)


def strip_provenance(blob):
    """The pack without its provenance trailer (no-op when absent)."""
    if peek_provenance(blob) is None:
        return blob
    return blob[: len(blob) - PACK_PROV_SIZE]


def pack_content_size(blob: bytes | memoryview) -> int:
    """Size of a pack's header + records, excluding every trailer.

    This is the quantity all modelling and byte accounting use, so neither
    the integrity envelope nor the provenance stamp ever shifts simulated
    volumes.
    """
    size = len(blob) - PACK_TRAILER_SIZE
    if peek_provenance(blob) is not None:
        size -= PACK_PROV_SIZE
    return size


def verify_pack(blob: bytes | memoryview) -> PackHeader:
    """Check a pack's structure and CRC without decoding the events.

    Returns the parsed header; raises :class:`PackFormatError` if the pack
    is truncated or its checksum does not match (corruption in flight).
    A provenance trailer, when present, rides outside the checksum and is
    skipped transparently.
    """
    try:
        view = memoryview(blob)
    except TypeError:
        raise PackFormatError(f"pack payload is not bytes: {type(blob).__name__}")
    if peek_provenance(view) is not None:
        view = view[: len(view) - PACK_PROV_SIZE]
    if len(view) < PACK_HEADER_SIZE + PACK_TRAILER_SIZE:
        raise PackFormatError(f"pack of {len(view)} bytes shorter than header+trailer")
    magic, version, app_id, rank, count = struct.unpack_from(_HEADER_FMT, view, 0)
    if magic != _MAGIC:
        raise PackFormatError(f"bad pack magic {magic:#010x}")
    if version != _VERSION:
        raise PackFormatError(f"unsupported pack version {version}")
    (stored,) = struct.unpack_from(_TRAILER_FMT, view, len(view) - PACK_TRAILER_SIZE)
    actual = zlib.crc32(view[: len(view) - PACK_TRAILER_SIZE])
    if stored != actual:
        raise PackFormatError(
            f"pack checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )
    return PackHeader(app_id=app_id, rank=rank, count=count)


def decode_pack(blob: bytes | memoryview) -> tuple[PackHeader, np.ndarray]:
    """Decode one pack into its header and event array.

    Raises :class:`PackFormatError` on bad magic/version/size/checksum.
    """
    view = memoryview(blob)
    if peek_provenance(view) is not None:
        view = view[: len(view) - PACK_PROV_SIZE]
    header = verify_pack(view)
    expected = PACK_HEADER_SIZE + header.count * EVENT_RECORD_SIZE + PACK_TRAILER_SIZE
    if len(view) != expected:
        raise PackFormatError(
            f"pack of {len(view)} bytes, header implies {expected}"
        )
    events = decode_events(view[PACK_HEADER_SIZE : len(view) - PACK_TRAILER_SIZE],
                           header.count)
    return header, events
