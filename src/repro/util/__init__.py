"""Shared utilities: units, deterministic RNG helpers, tables, statistics."""

from repro.util.units import (
    KIB,
    MIB,
    GIB,
    KB,
    MB,
    GB,
    USEC,
    MSEC,
    fmt_bytes,
    fmt_bw,
    fmt_time,
    parse_size,
)
from repro.util.rng import SeedSequence, derive_rng
from repro.util.stats import RunningStats, Histogram
from repro.util.tables import Table

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "USEC",
    "MSEC",
    "fmt_bytes",
    "fmt_bw",
    "fmt_time",
    "parse_size",
    "SeedSequence",
    "derive_rng",
    "RunningStats",
    "Histogram",
    "Table",
]
