"""Online health monitor: kernel hooks, detectors, and session integration."""

import pytest

from repro.analysis.alerts import AlertRouter
from repro.apps.eulermhd import EulerMHD
from repro.core.session import CouplingSession
from repro.errors import ConfigError, SimulationError
from repro.simt import Kernel
from repro.telemetry import (
    NULL_TELEMETRY,
    HealthMonitor,
    MonitorConfig,
    Telemetry,
)


# -- kernel periodic hooks ------------------------------------------------------------


class TestPeriodicHooks:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(SimulationError):
            Kernel().call_every(0.0, lambda now: None)

    def test_fires_at_multiples_of_interval(self):
        kernel = Kernel()
        seen = []
        kernel.call_every(1.0, seen.append)

        def proc(k):
            yield k.timeout(3.5)

        kernel.spawn(proc(kernel))
        kernel.run()
        assert seen == [1.0, 2.0, 3.0]
        assert kernel.now == 3.5

    def test_hooks_never_keep_simulation_alive(self):
        kernel = Kernel()
        seen = []
        kernel.call_every(0.25, seen.append)
        # No processes, no events: run drains immediately, zero hook fires.
        kernel.run()
        assert seen == []

    def test_hooks_do_not_perturb_event_accounting(self):
        def proc(k):
            for _ in range(5):
                yield k.timeout(0.3)

        plain = Kernel()
        plain.spawn(proc(plain))
        plain.run()

        hooked = Kernel()
        fired = []
        hooked.call_every(0.1, fired.append)
        hooked.spawn(proc(hooked))
        hooked.run()

        assert fired  # the hook really ran
        assert hooked.events_dispatched == plain.events_dispatched
        assert hooked.now == plain.now

    def test_cancel_stops_firing(self):
        kernel = Kernel()
        seen = []
        hook = kernel.call_every(1.0, seen.append)

        def proc(k):
            yield k.timeout(2.5)
            k.cancel_every(hook)
            yield k.timeout(3.0)

        kernel.spawn(proc(kernel))
        kernel.run()
        assert seen == [1.0, 2.0]
        assert hook.fired == 2

    def test_multiple_hooks_fire_in_registration_order(self):
        kernel = Kernel()
        order = []
        kernel.call_every(1.0, lambda now: order.append(("a", now)))
        kernel.call_every(1.0, lambda now: order.append(("b", now)))

        def proc(k):
            yield k.timeout(1.5)

        kernel.spawn(proc(kernel))
        kernel.run()
        assert order == [("a", 1.0), ("b", 1.0)]

    def test_clock_reads_due_time_inside_hook(self):
        kernel = Kernel()
        stamps = []
        kernel.call_every(0.4, lambda now: stamps.append((now, kernel.now)))

        def proc(k):
            yield k.timeout(1.0)

        kernel.spawn(proc(kernel))
        kernel.run()
        assert stamps == [(0.4, 0.4), (0.8, 0.8)]


# -- monitor construction -------------------------------------------------------------


class TestMonitorConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MonitorConfig(interval=0.0)
        with pytest.raises(ConfigError):
            MonitorConfig(interval=0.1, window=0.05)  # window < interval
        with pytest.raises(ConfigError):
            MonitorConfig(capacity=1)
        with pytest.raises(ConfigError):
            MonitorConfig(imbalance_ratio_threshold=1.0)
        with pytest.raises(ConfigError):
            MonitorConfig(critical_path_share=0.0)

    def test_effective_cooldown_defaults_to_window(self):
        assert MonitorConfig(window=0.5).effective_cooldown == 0.5
        assert MonitorConfig(cooldown=0.1).effective_cooldown == 0.1

    def test_monitor_requires_live_telemetry(self):
        with pytest.raises(ConfigError):
            HealthMonitor(NULL_TELEMETRY)

    def test_attach_requires_shared_telemetry(self):
        monitor = HealthMonitor(Telemetry())
        with pytest.raises(ConfigError):
            monitor.attach(Kernel(telemetry=Telemetry()))

    def test_double_attach_rejected(self):
        tel = Telemetry()
        kernel = Kernel(telemetry=tel)
        monitor = HealthMonitor(tel)
        monitor.attach(kernel)
        with pytest.raises(ConfigError):
            monitor.attach(kernel)
        monitor.detach()
        monitor.attach(kernel)  # detach frees the slot


# -- detectors under fabricated scenarios ---------------------------------------------


def _run_with_load(kernel, monitor, load, duration=1.0, step=0.01):
    """Drive a kernel with a per-step ``load(now)`` fabrication callback."""
    def proc(k):
        t = 0.0
        while t < duration:
            yield k.timeout(step)
            t += step
            load(k.now)

    kernel.spawn(proc(kernel))
    monitor.attach(kernel)
    kernel.run()


class TestDetectors:
    def make(self, **overrides):
        cfg = dict(interval=0.05, window=0.25)
        cfg.update(overrides)
        tel = Telemetry()
        kernel = Kernel(telemetry=tel)
        monitor = HealthMonitor(tel, config=MonitorConfig(**cfg))
        return tel, kernel, monitor

    def test_eagain_storm_detected_during_run(self):
        tel, kernel, monitor = self.make(eagain_rate_threshold=200.0)
        eagain = tel.counter("stream.eagain_returns")
        _run_with_load(kernel, monitor, lambda now: eagain.inc(10))  # ~1000/s
        kinds = monitor.by_kind()
        assert kinds.get("stream_stall", 0) >= 1
        first = next(a for a in monitor.alerts if a.kind == "stream_stall")
        assert first.t_detect < kernel.now  # raised before the run ended
        assert first.detail["signal"] == "eagain_rate"
        assert first.severity == "critical"  # 1000/s is > 2x threshold

    def test_write_stall_share_detected(self):
        tel, kernel, monitor = self.make(eagain_rate_threshold=1e12)
        stall = tel.histogram("stream.write_stall_s")
        # Each step adds 5ms of stall per 10ms of time: 50% stall share.
        _run_with_load(kernel, monitor, lambda now: stall.observe(0.005))
        alerts = [a for a in monitor.alerts if a.kind == "stream_stall"]
        assert alerts and alerts[0].detail["signal"] == "write_stall_share"
        assert alerts[0].value == pytest.approx(0.5, rel=0.2)

    def test_backlog_growth_needs_floor_and_slope(self):
        tel, kernel, monitor = self.make(
            backlog_depth_floor=8.0, backlog_slope_threshold=20.0
        )
        depth = tel.gauge("blackboard.fifo_depth", pid=1)
        state = {"d": 0.0}

        def load(now):
            state["d"] += 1.0  # +100 jobs/s of queue growth
            depth.set(state["d"])

        _run_with_load(kernel, monitor, load)
        alerts = [a for a in monitor.alerts if a.kind == "backlog_growth"]
        assert alerts
        assert alerts[0].t_detect < kernel.now
        assert alerts[0].value > 20.0

    def test_shallow_backlog_below_floor_is_quiet(self):
        tel, kernel, monitor = self.make(backlog_depth_floor=1000.0)
        depth = tel.gauge("blackboard.fifo_depth", pid=1)
        state = {"d": 0.0}

        def load(now):
            state["d"] += 1.0
            depth.set(state["d"])

        _run_with_load(kernel, monitor, load)
        assert not [a for a in monitor.alerts if a.kind == "backlog_growth"]

    def test_load_imbalance_from_fabricated_spans(self):
        tel, kernel, monitor = self.make(imbalance_ratio_threshold=4.0)

        def load(now):
            # pid 1 busy the whole step, pids 2..9 a sliver each.
            span = tel.span("work", pid=1)
            span.t0 = now - 0.01
            span.end()
            for pid in range(2, 10):
                s = tel.span("work", pid=pid)
                s.t0 = now - 0.0001
                s.end()

        _run_with_load(kernel, monitor, load)
        kinds = monitor.by_kind()
        assert kinds.get("load_imbalance", 0) >= 1
        worst = next(a for a in monitor.alerts if a.kind == "load_imbalance")
        assert worst.detail["pid"] == 1

    def test_worker_starvation_lists_starved_pids(self):
        tel, kernel, monitor = self.make(starvation_share=0.02)

        def load(now):
            for pid in (1, 2):
                s = tel.span("work", pid=pid)
                s.t0 = now - 0.01
                s.end()
            s = tel.span("work", pid=3)  # pid 3 barely works
            s.t0 = now - 1e-7
            s.end()

        _run_with_load(kernel, monitor, load)
        starved = [a for a in monitor.alerts if a.kind == "worker_starvation"]
        assert starved and starved[0].detail["pids"] == [3]

    def test_critical_path_requires_two_layers(self):
        tel, kernel, monitor = self.make(critical_path_share=0.85)

        def one_layer(now):
            s = tel.span("x", pid=1, cat="stream")
            s.t0 = now - 0.01
            s.end()

        _run_with_load(kernel, monitor, one_layer)
        assert not [a for a in monitor.alerts if a.kind == "critical_path"]

        tel, kernel, monitor = self.make(critical_path_share=0.85)

        def two_layers(now):
            s = tel.span("x", pid=1, cat="stream")
            s.t0 = now - 0.01
            s.end()
            s = tel.span("y", pid=2, cat="analysis")
            s.t0 = now - 1e-5
            s.end()

        _run_with_load(kernel, monitor, two_layers)
        hits = [a for a in monitor.alerts if a.kind == "critical_path"]
        assert hits and hits[0].detail["layer"] == "stream"

    def test_cooldown_dedups_alert_storms(self):
        tel, kernel, monitor = self.make(
            eagain_rate_threshold=1.0, window=0.25, cooldown=10.0
        )
        eagain = tel.counter("stream.eagain_returns")
        _run_with_load(kernel, monitor, lambda now: eagain.inc(10))
        # The condition holds at every tick, but the 10s cooldown allows one.
        assert monitor.by_kind()["stream_stall"] == 1

    def test_quiet_run_raises_nothing(self):
        tel, kernel, monitor = self.make()
        _run_with_load(kernel, monitor, lambda now: None)
        assert monitor.alerts == []
        assert monitor.ticks > 0

    def test_summary_is_json_shaped(self):
        import json

        tel, kernel, monitor = self.make()
        eagain = tel.counter("stream.eagain_returns")
        _run_with_load(kernel, monitor, lambda now: eagain.inc(10))
        summary = monitor.summary()
        json.dumps(summary)  # must be serializable
        assert summary["ticks"] == monitor.ticks
        assert summary["series_tracked"] == len(monitor.timeline.series)
        assert "counter.stream.eagain_returns" in summary["series"]


# -- session integration --------------------------------------------------------------


def _session(with_monitor, seed=3, router=None, config=None):
    tel = Telemetry()
    session = CouplingSession(seed=seed, telemetry=tel)
    session.add_application(EulerMHD(8, grid=256, iterations=4), name="mhd")
    session.set_analyzer(nprocs=2)
    if with_monitor:
        session.enable_monitor(config=config, router=router)
    return session.run()


class TestSessionIntegration:
    def test_enable_monitor_requires_telemetry(self):
        session = CouplingSession(seed=1)
        with pytest.raises(ConfigError):
            session.enable_monitor()

    def test_enable_monitor_twice_rejected(self):
        session = CouplingSession(seed=1, telemetry=Telemetry())
        session.enable_monitor()
        with pytest.raises(ConfigError):
            session.enable_monitor()

    def test_monitor_on_off_bit_identical(self):
        plain = _session(False)
        watched = _session(
            True, config=MonitorConfig(interval=1e-4, window=5e-4)
        )
        assert watched.health["ticks"] > 0
        assert plain.apps["mhd"].walltime == watched.apps["mhd"].walltime
        assert plain.apps["mhd"].events == watched.apps["mhd"].events
        assert plain.analyzer_walltime == watched.analyzer_walltime
        # Whole rendered chapters match byte for byte.
        assert (
            plain.report.chapters[0].render()
            == watched.report.chapters[0].render()
        )

    def test_health_summary_reaches_result_and_report(self):
        result = _session(True, config=MonitorConfig(interval=1e-4, window=5e-4))
        assert result.health is not None
        assert result.report.health is result.health
        rendered = result.report.render()
        assert "## Health (online monitor)" in rendered

    def test_router_sees_alerts_live(self):
        router = AlertRouter()
        live = []
        router.subscribe(live.append)
        # Tight thresholds so something certainly fires.
        result = _session(
            True,
            router=router,
            config=MonitorConfig(
                interval=1e-4, window=5e-4, critical_path_share=0.01
            ),
        )
        assert live
        assert result.health["alerts"]
        end = result.world.kernel.now
        assert all(a.t_detect < end for a in live)

    def test_alerts_published_through_blackboard(self):
        result = _session(
            True,
            config=MonitorConfig(
                interval=1e-4, window=5e-4, critical_path_share=0.01
            ),
        )
        assert result.health["published_to_blackboard"] > 0
        ingest = result.analyzer_stats["health_ingest"]
        assert sum(ingest.values()) == result.health["published_to_blackboard"]
        assert result.health["by_kind"] == ingest


# -- paired cleared events ------------------------------------------------------------


class TestClearedEvents:
    def make(self, **overrides):
        cfg = dict(interval=0.05, window=0.25)
        cfg.update(overrides)
        tel = Telemetry()
        kernel = Kernel(telemetry=tel)
        monitor = HealthMonitor(tel, config=MonitorConfig(**cfg))
        return tel, kernel, monitor

    def test_windowed_alert_clears_when_condition_subsides(self):
        tel, kernel, monitor = self.make(eagain_rate_threshold=200.0)
        eagain = tel.counter("stream.eagain_returns")
        _run_with_load(
            kernel, monitor,
            lambda now: eagain.inc(10) if now < 0.4 else None,
        )
        kinds = monitor.by_kind()
        assert kinds.get("stream_stall", 0) >= 1
        cleared = [a for a in monitor.alerts if a.kind == "stream_stall.cleared"]
        assert len(cleared) == 1
        c = cleared[0]
        assert c.severity == "info"
        raised = [a for a in monitor.alerts if a.kind == "stream_stall"][-1]
        assert c.detail["raised_at"] == raised.t_detect
        assert c.detail["active_s"] == pytest.approx(
            c.t_detect - raised.t_detect
        )
        assert c.t_detect > raised.t_detect
        assert monitor.summary()["unresolved"] == []

    def test_still_firing_condition_reported_unresolved(self):
        tel, kernel, monitor = self.make(eagain_rate_threshold=200.0)
        eagain = tel.counter("stream.eagain_returns")
        _run_with_load(kernel, monitor, lambda now: eagain.inc(10))
        assert not [a for a in monitor.alerts if a.kind.endswith(".cleared")]
        assert monitor.summary()["unresolved"] == ["stream_stall"]

    def test_cooldown_suppressed_condition_does_not_clear(self):
        # The raise cooldown dedups alerts while the condition persists;
        # a suppressed-but-still-firing condition must not emit .cleared.
        tel, kernel, monitor = self.make(
            eagain_rate_threshold=1.0, cooldown=10.0
        )
        eagain = tel.counter("stream.eagain_returns")
        _run_with_load(kernel, monitor, lambda now: eagain.inc(10))
        assert monitor.by_kind()["stream_stall"] == 1
        assert not [a for a in monitor.alerts if a.kind.endswith(".cleared")]
        assert monitor.summary()["unresolved"] == ["stream_stall"]

    def test_fault_watch_kinds_never_clear(self):
        tel, kernel, monitor = self.make()
        timeouts = tel.counter("stream.write_timeouts")
        fired = {"done": False}

        def load(now):
            if now >= 0.2 and not fired["done"]:
                timeouts.inc()
                fired["done"] = True

        _run_with_load(kernel, monitor, load)
        assert monitor.by_kind().get("stream_write_timeout", 0) >= 1
        assert not [a for a in monitor.alerts if a.kind.endswith(".cleared")]
        assert monitor.summary()["unresolved"] == []

    def test_condition_reraises_after_clearing(self):
        tel, kernel, monitor = self.make(
            eagain_rate_threshold=200.0, cooldown=0.05
        )
        eagain = tel.counter("stream.eagain_returns")
        # Two separate storms with a quiet gap wide enough to clear.
        _run_with_load(
            kernel, monitor,
            lambda now: eagain.inc(10) if now < 0.3 or now > 1.0 else None,
            duration=1.4,
        )
        raised = [a for a in monitor.alerts if a.kind == "stream_stall"]
        cleared = [a for a in monitor.alerts if a.kind == "stream_stall.cleared"]
        assert len(cleared) >= 1
        assert len(raised) >= 2  # the second storm re-raises after the clear
        assert raised[0].t_detect < cleared[0].t_detect < raised[-1].t_detect
