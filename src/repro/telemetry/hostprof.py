"""Host-time observability: wall-clock profiling of the simulator itself.

Everything else in :mod:`repro.telemetry` is stamped in **virtual kernel
seconds** — the time the *simulated* system experiences.  This module is
the second observability plane: low-overhead wall-clock accounting of the
simulator's own hot paths (the pure-Python loops that bound every figure
sweep), so optimization work starts from attributed evidence instead of
guesses.  The two planes never share a clock: virtual time flows through
:class:`~repro.telemetry.core.Telemetry`'s bound clock, host time flows
through :func:`host_now` — and every probe in the codebase draws from one
or the other, never both.

The plane has three pieces:

* **The host clock API** — :func:`host_now` / :func:`set_host_clock` /
  :func:`fake_host_clock`.  Every wall-clock probe in the repository
  (blackboard workers, job execution, analysis CPU attribution, bench
  elapsed timing, the :class:`Telemetry` fallback clock) reads this one
  clock, so a test can inject a fake and make host-time accounting
  deterministic.

* **:class:`HostProfiler`** — named :class:`HostTimer` accumulators
  (calls, wall seconds, items, bytes → items/s and MB/s), yield-aware
  :class:`HostSegment` timers for generator-based hot paths (the segment
  is *paused* across virtual-time waits so only straight-line Python cost
  is charged), coarse host spans, plus process-level signals: GC pause
  tracking via ``gc.callbacks``, optional ``tracemalloc`` peak, and RSS
  from ``/proc/self/status`` (``resource`` fallback).  Export is
  Chrome-trace or JSONL on the :data:`HOSTPROF_SCHEMA` tag so host traces
  sit alongside virtual-time traces without confusion.

* **The activation point** — :data:`ACTIVE` / :func:`profiled`.  Hot call
  sites (kernel dispatch loop, ``VMPIStream`` write/transit/read, codec
  chain encode/decode, EVF2 frame parse/emit, blackboard submit/execute,
  analyzer ingest) read ``hostprof.ACTIVE`` and pay one attribute load
  plus one branch when profiling is off (the default,
  :data:`NULL_HOSTPROF`).  Profiling is observation-only: simulation
  results are bit-identical with the profiler on or off, and the
  ``bench selfperf`` lane gates both that and the <5% overhead bar.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Callable

from repro.obs.registry import HOSTPROF_SCHEMA, make_record

#: Chrome-trace process row for host-time data — far beyond any simulated
#: rank pid, so a host trace merged next to a virtual trace cannot collide.
HOST_PID = 10_000

# -- the host clock ----------------------------------------------------------------

_CLOCK: Callable[[], float] = time.perf_counter


def host_now() -> float:
    """The wall-clock instant, in seconds, from the injectable host clock."""
    return _CLOCK()


def set_host_clock(clock: Callable[[], float] | None) -> Callable[[], float]:
    """Swap the process-wide host clock; returns the previous one.

    ``None`` restores the default (``time.perf_counter``).  Tests should
    prefer the :func:`fake_host_clock` context manager, which restores
    automatically.
    """
    global _CLOCK
    previous = _CLOCK
    _CLOCK = clock if clock is not None else time.perf_counter
    return previous


@contextmanager
def fake_host_clock(clock: Callable[[], float]):
    """Scoped clock injection: every host-time probe reads ``clock`` inside."""
    previous = set_host_clock(clock)
    try:
        yield clock
    finally:
        set_host_clock(previous)


def host_environment() -> dict[str, Any]:
    """The host fingerprint stamped on bench artefacts for comparability."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
    }


def _rss_bytes() -> tuple[int, int]:
    """Current and peak resident set size in bytes (0, 0 when unreadable)."""
    try:
        with open("/proc/self/status", "rb") as fh:
            current = peak = 0
            for line in fh:
                if line.startswith(b"VmRSS:"):
                    current = int(line.split()[1]) * 1024
                elif line.startswith(b"VmHWM:"):
                    peak = int(line.split()[1]) * 1024
            return current, peak
    except OSError:
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        return peak, peak
    except Exception:  # pragma: no cover - exotic platforms
        return 0, 0


# -- accumulators ------------------------------------------------------------------


class HostTimer:
    """One named wall-clock accumulator: calls, seconds, items, bytes."""

    __slots__ = ("name", "calls", "total_s", "items", "nbytes", "max_s")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.items = 0
        self.nbytes = 0
        self.max_s = 0.0

    def add(self, dt: float, items: int = 1, nbytes: int = 0) -> None:
        self.calls += 1
        self.total_s += dt
        self.items += items
        self.nbytes += nbytes
        if dt > self.max_s:
            self.max_s = dt

    @property
    def items_per_s(self) -> float:
        return self.items / self.total_s if self.total_s > 0 else 0.0

    @property
    def mb_per_s(self) -> float:
        return self.nbytes / self.total_s / 1e6 if self.total_s > 0 else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "calls": self.calls,
            "total_s": self.total_s,
            "max_s": self.max_s,
            "items": self.items,
            "bytes": self.nbytes,
            "items_per_s": self.items_per_s,
            "mb_per_s": self.mb_per_s,
        }


class HostSegment:
    """Yield-aware timer for generator hot paths.

    A stream ``write()`` suspends at virtual-time waits; wall time spent
    there belongs to *other* simulated work, not to the write path.  The
    caller brackets each yield with :meth:`pause`/:meth:`resume` so the
    segment accumulates only straight-line Python cost, and closes with
    :meth:`done` to book the total into its timer.
    """

    __slots__ = ("timer", "_acc", "_t0")

    def __init__(self, timer: HostTimer):
        self.timer = timer
        self._acc = 0.0
        self._t0 = host_now()

    def pause(self) -> None:
        self._acc += host_now() - self._t0

    def resume(self) -> None:
        self._t0 = host_now()

    def done(self, items: int = 1, nbytes: int = 0) -> None:
        self.timer.add(self._acc + (host_now() - self._t0), items, nbytes)


class _HostSpan:
    """One coarse host-time span (run/row granularity, not per-event)."""

    __slots__ = ("name", "t0", "t1", "args")

    def __init__(self, name: str, t0: float, args: dict[str, Any] | None):
        self.name = name
        self.t0 = t0
        self.t1: float | None = None
        self.args = args


# -- the profiler ------------------------------------------------------------------


class HostProfiler:
    """Wall-clock profile of the simulator's own hot paths.

    Construct, :func:`activate` (or use :func:`profiled`), run, read
    :meth:`summary` / :meth:`write_chrome_trace` / :meth:`write_jsonl`.
    ``track_malloc=True`` additionally runs ``tracemalloc`` between
    :meth:`start` and :meth:`stop` and records the traced peak — useful
    but *not* overhead-free, so it stays opt-in and outside the
    ``bench selfperf`` overhead gate.
    """

    def __init__(self, *, enabled: bool = True, track_malloc: bool = False):
        self.enabled = enabled
        self.track_malloc = track_malloc
        self.timers: dict[str, HostTimer] = {}
        self.counts: dict[str, int] = {}
        self.spans: list[_HostSpan] = []
        self.gc_pauses = 0
        self.gc_pause_total_s = 0.0
        self.gc_pause_max_s = 0.0
        self.gc_collections: dict[int, int] = {}
        self.malloc_peak_bytes: int | None = None
        self.rss_bytes = 0
        self.rss_peak_bytes = 0
        self.t_start: float | None = None
        self.t_stop: float | None = None
        self._gc_t0: float | None = None
        self._gc_cb: Callable | None = None
        self._own_tracemalloc = False

    # -- instruments ---------------------------------------------------------------

    def now(self) -> float:
        return host_now()

    def timer(self, name: str) -> HostTimer:
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = HostTimer(name)
        return timer

    def segment(self, name: str) -> HostSegment:
        """Open a yield-aware segment charging into ``timer(name)``."""
        return HostSegment(self.timer(name))

    def count(self, name: str, n: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + n

    @contextmanager
    def span(self, name: str, **args: Any):
        """Coarse host-time span (bench row, session run) for the trace."""
        span = _HostSpan(name, host_now(), args or None)
        self.spans.append(span)
        try:
            yield span
        finally:
            span.t1 = host_now()

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Begin process-level capture: GC callback, RSS, optional malloc."""
        if self.t_start is not None:
            return
        self.t_start = host_now()

        def on_gc(phase: str, info: dict) -> None:
            if phase == "start":
                self._gc_t0 = host_now()
            elif phase == "stop" and self._gc_t0 is not None:
                pause = host_now() - self._gc_t0
                self._gc_t0 = None
                self.gc_pauses += 1
                self.gc_pause_total_s += pause
                if pause > self.gc_pause_max_s:
                    self.gc_pause_max_s = pause
                gen = info.get("generation", -1)
                self.gc_collections[gen] = self.gc_collections.get(gen, 0) + 1

        self._gc_cb = on_gc
        gc.callbacks.append(on_gc)
        if self.track_malloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._own_tracemalloc = True

    def stop(self) -> None:
        """End capture; safe to call more than once."""
        if self.t_start is None or self.t_stop is not None:
            return
        self.t_stop = host_now()
        if self._gc_cb is not None:
            try:
                gc.callbacks.remove(self._gc_cb)
            except ValueError:  # pragma: no cover - external tampering
                pass
            self._gc_cb = None
        if self.track_malloc and tracemalloc.is_tracing():
            _current, peak = tracemalloc.get_traced_memory()
            self.malloc_peak_bytes = peak
            if self._own_tracemalloc:
                tracemalloc.stop()
        self.rss_bytes, self.rss_peak_bytes = _rss_bytes()

    @property
    def elapsed_s(self) -> float:
        if self.t_start is None:
            return 0.0
        return (self.t_stop if self.t_stop is not None else host_now()) - self.t_start

    # -- summaries -----------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Everything reduced to plain dicts, on the hostprof schema tag."""
        return {
            "schema": HOSTPROF_SCHEMA,
            "host": host_environment(),
            "elapsed_s": self.elapsed_s,
            "timers": {n: t.as_dict() for n, t in sorted(self.timers.items())},
            "counts": dict(sorted(self.counts.items())),
            "gc": {
                "pauses": self.gc_pauses,
                "pause_total_s": self.gc_pause_total_s,
                "pause_max_s": self.gc_pause_max_s,
                "collections": {str(k): v for k, v in sorted(self.gc_collections.items())},
            },
            "process": {
                "rss_bytes": self.rss_bytes,
                "rss_peak_bytes": self.rss_peak_bytes,
                "malloc_peak_bytes": self.malloc_peak_bytes,
            },
        }

    # -- export --------------------------------------------------------------------

    def chrome_trace(self) -> dict[str, Any]:
        """Host spans and timer totals as a Chrome trace on the host row.

        Host timestamps are relative to :meth:`start` (the host clock's
        epoch is arbitrary), scaled to microseconds.  Every event carries
        the schema tag in its args so a merged virtual+host trace stays
        unambiguous.
        """
        base = self.t_start if self.t_start is not None else 0.0
        events: list[dict[str, Any]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": HOST_PID,
                "tid": 0,
                "ts": 0,
                "args": {"name": f"host profiler [{HOSTPROF_SCHEMA}]"},
            }
        ]
        for span in self.spans:
            t1 = span.t1 if span.t1 is not None else host_now()
            args = dict(span.args or {})
            args["schema"] = HOSTPROF_SCHEMA
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": "hostprof",
                    "pid": HOST_PID,
                    "tid": 0,
                    "ts": (span.t0 - base) * 1e6,
                    "dur": (t1 - span.t0) * 1e6,
                    "args": args,
                }
            )
        events.append(
            {
                "ph": "i",
                "name": "hostprof.summary",
                "cat": "hostprof",
                "pid": HOST_PID,
                "tid": 0,
                "ts": self.elapsed_s * 1e6,
                "s": "p",
                "args": {
                    "schema": HOSTPROF_SCHEMA,
                    "timers": {n: t.as_dict() for n, t in sorted(self.timers.items())},
                    "counts": dict(sorted(self.counts.items())),
                },
            }
        )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, indent=1)
        return str(path)

    def jsonl_records(self) -> list[dict[str, Any]]:
        """Self-describing one-object-per-line export (``jq``-friendly)."""
        base = self.t_start if self.t_start is not None else 0.0
        records: list[dict[str, Any]] = [
            make_record(
                HOSTPROF_SCHEMA,
                "meta",
                host=host_environment(),
                elapsed_s=self.elapsed_s,
            )
        ]
        for name, timer in sorted(self.timers.items()):
            records.append(
                make_record(HOSTPROF_SCHEMA, "timer", name=name, **timer.as_dict())
            )
        for name, value in sorted(self.counts.items()):
            records.append(
                make_record(HOSTPROF_SCHEMA, "count", name=name, value=value)
            )
        for span in self.spans:
            t1 = span.t1 if span.t1 is not None else host_now()
            records.append(
                make_record(
                    HOSTPROF_SCHEMA,
                    "span",
                    name=span.name,
                    t0_s=span.t0 - base,
                    dur_s=t1 - span.t0,
                    args=span.args,
                )
            )
        summary = self.summary()
        records.append(make_record(HOSTPROF_SCHEMA, "gc", **summary["gc"]))
        records.append(make_record(HOSTPROF_SCHEMA, "process", **summary["process"]))
        return records

    def write_jsonl(self, path: str) -> str:
        with open(path, "w") as fh:
            for record in self.jsonl_records():
                fh.write(json.dumps(record) + "\n")
        return str(path)


#: Shared disabled instance: what every hot call site sees by default.
NULL_HOSTPROF = HostProfiler(enabled=False)

#: The process-wide active profiler.  Hot paths read ``hostprof.ACTIVE``
#: afresh on each entry (module attribute, not a cached import) so
#: activation mid-process reaches every layer.
ACTIVE: HostProfiler = NULL_HOSTPROF


def activate(profiler: HostProfiler) -> HostProfiler:
    """Install ``profiler`` as the process-wide active host profiler."""
    global ACTIVE
    if ACTIVE is not NULL_HOSTPROF:
        raise RuntimeError("a host profiler is already active; deactivate() it first")
    if not profiler.enabled:
        raise ValueError("cannot activate a disabled HostProfiler")
    profiler.start()
    ACTIVE = profiler
    return profiler


def deactivate() -> HostProfiler:
    """Stop and uninstall the active profiler; returns it for inspection."""
    global ACTIVE
    profiler = ACTIVE
    if profiler is not NULL_HOSTPROF:
        profiler.stop()
        ACTIVE = NULL_HOSTPROF
    return profiler


@contextmanager
def profiled(profiler: HostProfiler | None = None, **kwargs: Any):
    """Scoped activation: ``with hostprof.profiled() as hp: ...``."""
    hp = profiler if profiler is not None else HostProfiler(**kwargs)
    activate(hp)
    try:
        yield hp
    finally:
        if ACTIVE is hp:
            deactivate()
