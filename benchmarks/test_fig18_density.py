"""Figure 18 — density maps for LU.D and BT.D.

Paper: (a) LU MPI_Send hit counts correlate with the number of mesh
neighbours; (b) LU total-size map follows the decomposition pattern;
(c,d,e) BT.D shows a small p2p size imbalance while collective and wait
times carry structure; wait and collective maps follow the same symmetry.
"""

import numpy as np
import pytest

from repro.bench import fig18_density


@pytest.fixture(scope="module")
def result(scale):
    return fig18_density(scale=scale)


def test_fig18_regenerate(benchmark, scale, show):
    data = benchmark.pedantic(lambda: fig18_density(scale=scale), rounds=1, iterations=1)
    show(data.table())


class TestLU:
    def test_send_hits_track_mesh_neighbourhood(self, result):
        """Fig 18(a): interior ranks send more than edges, edges more than corners."""
        density = result.density("LU.D")
        hits = density.map_for("MPI_Send", "hits")
        from repro.apps.base import grid_2d

        n = len(hits)
        px, py = grid_2d(n)
        def degree(rank):
            x, y = rank % px, rank // px
            return (x > 0) + (x < px - 1) + (y > 0) + (y < py - 1)

        by_degree = {}
        for rank in range(n):
            by_degree.setdefault(degree(rank), []).append(hits[rank])
        means = {d: np.mean(v) for d, v in by_degree.items()}
        assert means[4] > means[3] > means[2]

    def test_size_map_mirrors_hits_map(self, result):
        """Fig 18(b): total size follows the same decomposition pattern."""
        density = result.density("LU.D")
        hits = density.map_for("MPI_Send", "hits")
        size = density.map_for("MPI_Send", "size")
        correlation = np.corrcoef(hits, size)[0, 1]
        assert correlation > 0.99

    def test_render_grid_shows_borders(self, result):
        density = result.density("LU.D")
        text = density.render_grid("MPI_Send", "hits")
        assert len(text.splitlines()) > 2


class TestBT:
    def test_p2p_size_imbalance_is_small(self, result):
        """Fig 18(e): blue 660.93 MB vs red 664.87 MB — a < 1 % spread."""
        density = result.density("BT.D")
        size = density.map_for("MPI_Isend", "size") + density.map_for("MPI_Send", "size")
        assert size.min() > 0
        spread = (size.max() - size.min()) / size.mean()
        assert spread < 0.05

    def test_wait_time_carries_structure(self, result):
        """Fig 18(d): waits are nonzero and spatially non-uniform."""
        wait = result.density("BT.D").aggregate(["MPI_Wait", "MPI_Waitall"], "time")
        assert wait.sum() > 0
        assert wait.max() > wait.min()

    def test_collective_time_positive_everywhere(self, result):
        coll = result.density("BT.D").map_for("MPI_Allreduce", "time")
        assert (coll > 0).all()

    def test_waitstate_module_consistent_with_density(self, result):
        waitstate = result.waitstate("BT.D")
        density_total = result.density("BT.D").aggregate(
            ["MPI_Wait", "MPI_Waitall"], "time"
        ).sum()
        # WaitState also counts blocking receives; it can only be larger.
        assert waitstate.wait_time.sum() >= density_total * 0.999
