"""Event packs: the ~1 MB blocks travelling through VMPI streams.

Since wire format v2 a pack is a :mod:`repro.codec.frame` — one header
plus typed, length-prefixed sections (payload, CRC, codec descriptor,
sampling accounting, provenance).  Everything here is a thin wrapper
over that single frame implementation; there is no trailer sniffing or
byte arithmetic left in this module.

Accounting still budgets the v1 content layout — a 16-byte logical
header plus 40 bytes per record (:data:`PACK_HEADER_SIZE`,
``EVENT_RECORD_SIZE``) — so pack capacity, ``size_bytes`` and the
modelled stream volume are independent of framing, checksums,
provenance stamps and codec output sizes.  ``PackHeader.count`` is the
number of *kept* records (after any sampling stage), which is also what
the payload decodes back to.

When a reduction chain is configured (see :mod:`repro.codec.stages`),
:meth:`EventPackBuilder.emit` encodes the sealed batch and stamps the
chain spec into the frame's codec-descriptor section, so the analyzer
self-describes its decode path from the wire bytes alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.frame import (
    CONTENT_HEADER_SIZE,
    SEC_PROVENANCE,
    PackProvenance,
    build_frame,
    frame_content_size,
    parse_frame,
    peek_provenance,
)
from repro.codec.stages import CodecChain, decode_chain
from repro.errors import PackFormatError
from repro.instrument.events import EVENT_RECORD_SIZE, decode_events, encode_event_into
from repro.mpi.pmpi import CallRecord

PACK_HEADER_SIZE = CONTENT_HEADER_SIZE  # modelled content header, v1-compatible

__all__ = [
    "PACK_HEADER_SIZE",
    "PackHeader",
    "PackProvenance",
    "EventPackBuilder",
    "attach_provenance",
    "peek_provenance",
    "strip_provenance",
    "pack_content_size",
    "verify_pack",
    "decode_pack",
    "decode_pack_frame",
]


@dataclass(frozen=True)
class PackHeader:
    app_id: int
    rank: int
    count: int

    @property
    def payload_bytes(self) -> int:
        return self.count * EVENT_RECORD_SIZE


class EventPackBuilder:
    """Accumulates encoded events until the block budget is reached.

    ``chain`` (a :class:`repro.codec.stages.CodecChain`) is applied when
    the pack is sealed; the builder keeps exact reduction accounting in
    ``bytes_content`` / ``bytes_wire`` / ``events_sampled_out``.
    """

    def __init__(
        self,
        app_id: int,
        rank: int,
        capacity_bytes: int = 1024 * 1024,
        chain: CodecChain | None = None,
    ):
        min_capacity = PACK_HEADER_SIZE + EVENT_RECORD_SIZE
        if capacity_bytes < min_capacity:
            raise PackFormatError(
                f"pack capacity {capacity_bytes} below minimum {min_capacity}"
            )
        if not (0 <= app_id < 2**16):
            raise PackFormatError(f"app_id {app_id} outside u16")
        if not (0 <= rank < 2**32):
            raise PackFormatError(f"rank {rank} outside u32")
        self.app_id = app_id
        self.rank = rank
        self.capacity_bytes = capacity_bytes
        self.max_records = (capacity_bytes - PACK_HEADER_SIZE) // EVENT_RECORD_SIZE
        self.chain = chain if chain else None
        # Preallocated per-writer record buffer: add() packs straight into
        # it (no per-event bytes object, no list growth); emit() hands the
        # filled prefix to the chain/framer and resets the write cursor.
        self._buf = bytearray(self.max_records * EVENT_RECORD_SIZE)
        self._count = 0
        self.total_events = 0
        self.packs_emitted = 0
        self.bytes_content = 0  # modelled content bytes of emitted packs
        self.bytes_wire = 0  # physical frame bytes of emitted packs
        self.events_sampled_out = 0
        self.last_encode = None  # EncodeResult of the latest emit (chain only)

    @property
    def count(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count >= self.max_records

    @property
    def size_bytes(self) -> int:
        return PACK_HEADER_SIZE + self._count * EVENT_RECORD_SIZE

    def add(self, record: CallRecord) -> bool:
        """Append one event; returns True when the pack is now full."""
        encode_event_into(self._buf, self._count * EVENT_RECORD_SIZE, record)
        self._count += 1
        self.total_events += 1
        return self._count >= self.max_records

    def emit(
        self, now: float = 0.0, provenance: PackProvenance | None = None
    ) -> bytes:
        """Seal, encode and reset; empty packs serialize with count == 0."""
        # A view of the filled prefix; consumed (and copied at most once)
        # before this method resets the cursor, so reuse is safe.
        records = memoryview(self._buf)[: self._count * EVENT_RECORD_SIZE]
        if self.chain is not None:
            result = self.chain.encode(records, now=now)
            payload, count = result.payload, result.count
            dropped, spec = result.events_dropped, self.chain.spec
            self.last_encode = result
        else:
            payload, count = records, self._count
            dropped, spec = 0, ""
        blob = build_frame(
            self.app_id,
            self.rank,
            count,
            payload,
            codec=spec,
            provenance=provenance,
            events_dropped=dropped,
        )
        records.release()
        self._count = 0
        self.packs_emitted += 1
        self.bytes_content += PACK_HEADER_SIZE + count * EVENT_RECORD_SIZE
        self.bytes_wire += len(blob)
        self.events_sampled_out += dropped
        return blob


def attach_provenance(
    blob: bytes, flow_id: int, app_id: int, rank: int, t_seal: float
) -> bytes:
    """Stamp a provenance section onto a sealed pack (re-frames it)."""
    frame = parse_frame(blob)
    frame.with_provenance(
        PackProvenance(flow_id=flow_id, app_id=app_id, rank=rank, t_seal=t_seal)
    )
    return frame.to_bytes()


def strip_provenance(blob):
    """The pack without its provenance section (no-op when absent)."""
    if peek_provenance(blob) is None:
        return blob
    frame = parse_frame(blob, verify=False)
    frame.drop_section(SEC_PROVENANCE)
    return frame.to_bytes()


def pack_content_size(blob: bytes | memoryview) -> int:
    """Modelled content bytes of a pack: logical header + fixed records.

    This is the quantity all modelling and byte accounting use, so
    framing, checksums, codec output sizes and provenance stamps never
    shift simulated volumes.
    """
    return frame_content_size(blob)


def verify_pack(blob: bytes | memoryview) -> PackHeader:
    """Check a pack's frame structure and CRC without decoding events.

    Returns the parsed header; raises a :class:`PackFormatError` subclass
    if the frame is truncated, structurally invalid, carries a bad
    checksum, or names a codec chain this build cannot decode.
    """
    frame = parse_frame(blob)
    decode_chain(frame.codec)  # raises UnknownCodecError on a foreign descriptor
    return PackHeader(app_id=frame.app_id, rank=frame.rank, count=frame.count)


def decode_pack(blob: bytes | memoryview) -> tuple[PackHeader, np.ndarray]:
    """Decode one pack into its header and event array.

    Verifies the CRC, then inverts the codec chain named by the frame's
    descriptor (identity when absent).  Raises a :class:`PackFormatError`
    subclass on bad magic/version/structure/checksum/codec.
    """
    return decode_pack_frame(parse_frame(blob))


def decode_pack_frame(frame) -> tuple[PackHeader, np.ndarray]:
    """:func:`decode_pack` for an already-parsed frame.

    The ingest pipeline parses each pack exactly once and threads the
    frame to the unpacker knowledge source; this entry point skips the
    re-parse (and re-CRC) of the blob form.  The caller is responsible
    for having verified the checksum.
    """
    records = decode_chain(frame.codec).decode(frame.payload, frame.count)
    header = PackHeader(app_id=frame.app_id, rank=frame.rank, count=frame.count)
    return header, decode_events(records, frame.count)
