"""The shared parallel file-system instance of a simulated job.

Model:

* **Data path** — one job-wide :class:`~repro.simt.resources.Pipe` whose
  bandwidth is the machine's aggregate FS throughput scaled by the job's
  share of the machine (the paper's own scaling argument: Tera 100's
  500 GB/s become 9.1 GB/s for a 2560-core job).  Additionally each *file*
  is capped at the stripe bandwidth — a single writer cannot use the whole
  file system.
* **Metadata path** — one serialized server; every namespace operation
  (create/open/close/stat) costs ``fs_metadata_latency`` of exclusive server
  time.  When thousands of ranks create task-local files simultaneously the
  queue delay dominates — exactly the meta-data-contention failure mode the
  paper's introduction describes.
"""

from __future__ import annotations

from repro.errors import IOSimError
from repro.network.machine import MachineSpec
from repro.simt import Kernel, Pipe
from repro.simt.primitives import SimEvent
from repro.simt.resources import Resource


class ParallelFS:
    """Job-scoped view of the shared parallel file system."""

    def __init__(self, kernel: Kernel, machine: MachineSpec, job_cores: int):
        if job_cores <= 0:
            raise IOSimError(f"job_cores must be > 0, got {job_cores}")
        self.kernel = kernel
        self.machine = machine
        self.job_cores = job_cores
        bandwidth = machine.fs_job_bandwidth(job_cores)
        self.data_pipe = Pipe(kernel, bandwidth, name="fs.data")
        self.metadata = Resource(kernel, capacity=1, name="fs.mds")
        self.metadata_ops = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.files_created = 0

    @property
    def job_bandwidth(self) -> float:
        return self.data_pipe.bandwidth

    # -- metadata ----------------------------------------------------------------

    def metadata_op(self, service_scale: float = 1.0):
        """Generator: performs one metadata operation (queue + service).

        ``service_scale`` shrinks the exclusive service time; experiment
        drivers use it to amortize one-time costs over shortened runs while
        preserving the MDS queueing structure.
        """
        if not (0 < service_scale <= 1.0):
            raise IOSimError(f"service_scale must be in (0, 1], got {service_scale}")
        self.metadata_ops += 1
        yield self.metadata.acquire()
        try:
            yield self.kernel.timeout(self.machine.fs_metadata_latency * service_scale)
        finally:
            self.metadata.release()

    # -- data --------------------------------------------------------------------

    def raw_write(self, nbytes: int, stripe_cap: float | None = None) -> SimEvent:
        """Commit ``nbytes`` to the shared data path (no metadata)."""
        if nbytes < 0:
            raise IOSimError(f"negative write: {nbytes}")
        self.bytes_written += nbytes
        return self._capped_transfer(nbytes, stripe_cap)

    def raw_read(self, nbytes: int, stripe_cap: float | None = None) -> SimEvent:
        if nbytes < 0:
            raise IOSimError(f"negative read: {nbytes}")
        self.bytes_read += nbytes
        return self._capped_transfer(nbytes, stripe_cap)

    def _capped_transfer(self, nbytes: int, stripe_cap: float | None) -> SimEvent:
        ev = self.data_pipe.transfer(nbytes)
        cap = stripe_cap if stripe_cap is not None else self.machine.fs_stripe_bandwidth
        # A single stream cannot beat its stripe bandwidth even on an idle FS:
        # enforce a minimum duration of nbytes / stripe_cap.
        min_duration = nbytes / cap
        floor = self.kernel.timeout(min_duration)
        return self.kernel.all_of([ev, floor])

    def open_file(self, path: str, create: bool = True) -> "_OpenTicket":
        """Begin an open; caller must ``yield from ticket.wait()``."""
        if create:
            self.files_created += 1
        return _OpenTicket(self, path)


class _OpenTicket:
    """Deferred metadata transaction for an open/create."""

    def __init__(self, fs: ParallelFS, path: str):
        self.fs = fs
        self.path = path

    def wait(self):
        yield from self.fs.metadata_op()
