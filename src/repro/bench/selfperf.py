"""Self-performance bench: what the *simulator itself* costs, attributed.

Every other bench lane reports virtual-time results — what the simulated
system would do.  This lane turns the host-time observability plane
(:mod:`repro.telemetry.hostprof`) on itself and reports what the
pure-Python simulator spends per wall-clock second, hot path by hot path:

* ``kernel_events_per_s`` — simulated events dispatched per host second
  inside the kernel drain loop;
* ``stream_mb_per_s`` — modelled bytes moved through the VMPIStream
  write/transit/read copy paths per host second of straight-line Python
  (yield-aware: virtual-time waits are not charged);
* ``codec_mb_per_s`` — content bytes through the codec chain encode and
  decode per host second (0 on the identity row: no chain runs);
* ``frame_mb_per_s`` — frame bytes through EVF2 parse and emit per host
  second.

One row per reduction chain, so ``BENCH_selfperf.json`` doubles as the
hotspot-attribution document: which layer bounds a figure sweep, and how
each chain shifts the balance.  Next to the throughputs each row carries
four ``*_allocs`` columns — timing-free tracemalloc probes counting the
allocation blocks each hot lane pins per fixed unit of work (pending
events, packed records, parsed frames) — so an alloc-per-event
regression is caught even on a noisy runner.  Deterministic columns (events, packs)
gate tight in CI; throughput columns gate with generous per-metric
tolerances because CI runners are slower than dev boxes — the *ratio*
gates below are the real self-checks:

* **bit-identity** — the profiler is observation-only: a run with the
  profiler active must produce exactly the virtual walltime, event count
  and pack count of an unprofiled run;
* **overhead** — best-of-N wall time with the profiler on must stay
  within ``overhead_budget`` (default 5%) of best-of-N with it off.

Both gates raise :class:`~repro.errors.ConfigError` on violation, so a
plain ``python -m repro.bench selfperf`` run is itself the test.
"""

from __future__ import annotations

import gc
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import repro.codec.frame as _frame_mod
import repro.codec.stages as _stages_mod
import repro.instrument.interceptor as _interceptor_mod
import repro.instrument.packer as _packer_mod
import repro.simt.kernel as _kernel_mod
import repro.simt.primitives as _primitives_mod
import repro.simt.process as _process_mod
import repro.vmpi.stream as _stream_mod
from repro.apps.nas import SP
from repro.core.session import CouplingSession
from repro.errors import ConfigError
from repro.instrument.overhead import InstrumentationCost
from repro.network.machine import MachineSpec, TERA100
from repro.telemetry import Telemetry, hostprof
from repro.telemetry.hostprof import HostProfiler, host_now

#: chain sweep: identity baseline plus the two composed reductions the
#: codec lane shows at the extremes of the CPU/volume trade-off
CHAINS = ("", "delta+dict", "delta+dict+zlib")

#: timers summed into the stream copy-path throughput
_STREAM_TIMERS = ("stream.write", "stream.transit", "stream.read")
#: timers summed into the codec-chain throughput
_CODEC_TIMERS = ("codec.encode", "codec.decode")
#: timers summed into the EVF2 framing throughput
_FRAME_TIMERS = ("frame.parse", "frame.emit")

#: source files attributed to each hot-path lane by the allocation probes
_ALLOC_LANES = {
    "kernel_allocs": (
        _kernel_mod.__file__, _process_mod.__file__, _primitives_mod.__file__,
    ),
    "stream_allocs": (
        _stream_mod.__file__, _packer_mod.__file__, _interceptor_mod.__file__,
    ),
    "codec_allocs": (_stages_mod.__file__,),
    "frame_allocs": (_frame_mod.__file__,),
}


@dataclass
class SelfPerfPoint:
    """Host-side throughput of one profiled coupled-workload run."""

    chain: str
    events: int
    packs: int
    kernel_events_per_s: float
    stream_mb_per_s: float
    codec_mb_per_s: float
    frame_mb_per_s: float
    #: per-lane allocation blocks retained by the deterministic probes
    #: (see _lane_alloc_counts); no timing involved, so they gate tight
    kernel_allocs: int
    stream_allocs: int
    codec_allocs: int
    frame_allocs: int
    #: host wall seconds for the profiled run (never gated: pure noise)
    elapsed_s: float


@dataclass
class SelfPerfResult:
    """Per-chain host throughput plus the self-gate outcomes."""

    machine: str
    scale: str
    seed: int
    host: dict[str, Any] = field(default_factory=dict)
    points: list[SelfPerfPoint] = field(default_factory=list)
    #: measured profiler overhead (best-of-N on/off wall-time ratio - 1)
    overhead_ratio: float = 0.0
    overhead_budget: float = 0.0
    #: summary of the last profiled run, for trace export / inspection
    profile: dict[str, Any] = field(default_factory=dict)

    def table(self):
        from repro.util.tables import Table

        t = Table(
            [
                "chain", "events", "packs", "kernel_events_per_s",
                "stream_mb_per_s", "codec_mb_per_s", "frame_mb_per_s",
                "kernel_allocs", "stream_allocs", "codec_allocs",
                "frame_allocs", "elapsed_s",
            ],
            title=(
                f"Simulator self-performance ({self.machine}, "
                f"scale={self.scale}, profiler overhead "
                f"{self.overhead_ratio:+.2%} of {self.overhead_budget:.0%} budget)"
            ),
        )
        for p in self.points:
            t.add_row(
                p.chain or "identity", p.events, p.packs,
                f"{p.kernel_events_per_s:.0f}", f"{p.stream_mb_per_s:.3f}",
                f"{p.codec_mb_per_s:.3f}", f"{p.frame_mb_per_s:.3f}",
                p.kernel_allocs, p.stream_allocs, p.codec_allocs,
                p.frame_allocs, f"{p.elapsed_s:.4f}",
            )
        return t


def _workload(scale: str):
    if scale == "paper":
        return SP(64, "C", iterations=3)
    if scale == "small":
        return SP(16, "C", iterations=3)
    raise ConfigError(f"unknown scale {scale!r}")


def _run_once(
    chain: str,
    scale: str,
    machine: MachineSpec,
    seed: int,
    telemetry: Telemetry | None = None,
    profiler: HostProfiler | None = None,
):
    """One coupled run; returns ``(app_result, analyzer_stats, wall_s)``."""
    kernel = _workload(scale)
    # Small packs, as in the codec lane: the frame/codec/stream timers need
    # a stream of packs per writer, not one tail flush.
    cost = InstrumentationCost(block_size=4096, na_buffers=2)
    session = CouplingSession(
        machine=machine, seed=seed, instrumentation=cost, telemetry=telemetry
    )
    name = session.add_application(kernel)
    session.set_analyzer(ratio=4.0)
    if chain:
        session.set_reduction(chain)
    t0 = host_now()
    if profiler is not None:
        with hostprof.profiled(profiler), profiler.span(
            "selfperf.run", chain=chain or "identity", scale=scale
        ):
            run = session.run()
    else:
        run = session.run()
    wall = host_now() - t0
    return run.app(name), run.analyzer_stats, wall


def _throughput(profiler: HostProfiler, names: tuple[str, ...]) -> float:
    """Aggregate MB/s across a group of timers (0 when none fired)."""
    total_s = sum(profiler.timers[n].total_s for n in names if n in profiler.timers)
    nbytes = sum(profiler.timers[n].nbytes for n in names if n in profiler.timers)
    return nbytes / total_s / 1e6 if total_s > 0 else 0.0


def _fingerprint(app, stats) -> tuple:
    """The simulation outputs that must not move when profiling is on."""
    return (
        app.walltime, app.events, app.packs,
        stats["packs"], stats["bytes"], stats["bytes_wire"],
    )


# -- allocation probes ------------------------------------------------------------
#
# Throughput columns are host-speed-dependent and gate loosely; the alloc
# columns are their timing-free complement.  Each probe drives a fixed
# working set through one hot layer and *holds it live* across the closing
# tracemalloc snapshot, so the count is the number of allocation blocks
# the layer pins per unit of work — exactly the figure the slotted-event /
# preallocated-buffer / zero-copy work drives down, and deterministic for
# a given interpreter.

_PROBE_EVENTS = 256  # pending events held by the kernel probe
_PROBE_RECORDS = 64  # records packed by the stream probe
_PROBE_FRAMES = 32  # frames parsed and held by the frame probe


def _probe_kernel(hold: list) -> None:
    kernel = _kernel_mod.Kernel()
    for i in range(_PROBE_EVENTS):
        kernel.timeout(float(i))
    hold.append(kernel)


def _probe_stream(chain: str, hold: list) -> None:
    from repro.codec.stages import build_chain
    from repro.mpi.pmpi import CallRecord

    builder = _packer_mod.EventPackBuilder(
        app_id=0,
        rank=0,
        capacity_bytes=16 + 40 * _PROBE_RECORDS,
        chain=build_chain(chain) if chain else None,
    )
    record = CallRecord("MPI_Send", 0.0, 1e-6, 0, 0, 4, 1, 7, 1024)
    for _ in range(_PROBE_RECORDS):
        builder.add(record)
    hold.append(builder)


def _probe_codec(chain: str, hold: list) -> None:
    if not chain:
        return  # identity: no chain runs, no stage allocations
    from repro.codec.stages import build_chain

    encoder = build_chain(chain)
    records = bytes(40 * _PROBE_RECORDS)
    hold.append(encoder.encode(records, now=0.0))


def _probe_frame(hold: list) -> None:
    blob = _frame_mod.build_frame(
        0, 0, _PROBE_RECORDS, bytes(40 * _PROBE_RECORDS), codec="delta"
    )
    hold.append([_frame_mod.parse_frame(blob) for _ in range(_PROBE_FRAMES)])
    hold.append(blob)


def _alloc_blocks(files: tuple[str, ...], fn) -> int:
    """Live allocation blocks attributable to ``files`` after ``fn(hold)``."""
    # Untracked warm-up pass: first-call caches (struct tables, codec
    # registries, interned codec specs) allocate once per process and
    # would otherwise show up only in cold runs, making the counts
    # depend on what ran before the probe.
    warm: list = []
    fn(warm)
    warm.clear()
    hold: list = []
    gc.collect()
    tracemalloc.start(1)
    try:
        fn(hold)
        gc.collect()
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    snapshot = snapshot.filter_traces(
        [tracemalloc.Filter(True, fname) for fname in files]
    )
    count = sum(stat.count for stat in snapshot.statistics("filename"))
    hold.clear()
    return count


def _lane_alloc_counts(chain: str) -> dict[str, int]:
    """Tracemalloc block deltas of the four hot-path lanes for one chain."""
    return {
        "kernel_allocs": _alloc_blocks(_ALLOC_LANES["kernel_allocs"], _probe_kernel),
        "stream_allocs": _alloc_blocks(
            _ALLOC_LANES["stream_allocs"], lambda hold: _probe_stream(chain, hold)
        ),
        "codec_allocs": _alloc_blocks(
            _ALLOC_LANES["codec_allocs"], lambda hold: _probe_codec(chain, hold)
        ),
        "frame_allocs": _alloc_blocks(_ALLOC_LANES["frame_allocs"], _probe_frame),
    }


def selfperf_sweep(
    scale: str = "small",
    machine: MachineSpec = TERA100,
    seed: int = 0,
    telemetry: Telemetry | None = None,
    chains: tuple[str, ...] = CHAINS,
    overhead_budget: float = 0.05,
    repeats: int = 5,
    trace_dir: str | None = None,
) -> SelfPerfResult:
    """Profile the simulator across reduction chains; self-gate the profiler.

    The identity chain anchors both gates: its unprofiled run provides the
    bit-identity reference and the overhead baseline.  ``trace_dir`` dumps
    the last profiled run as ``BENCH_selfperf.hostprof.trace.json`` (Chrome
    trace) and ``BENCH_selfperf.hostprof.jsonl``.
    """
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    result = SelfPerfResult(
        machine=machine.name, scale=scale, seed=seed,
        host=hostprof.host_environment(), overhead_budget=overhead_budget,
    )

    # -- gate 1: bit-identity, profiler off vs on ------------------------------
    ref_app, ref_stats, _ = _run_once(chains[0], scale, machine, seed, telemetry)
    probe = HostProfiler()
    app, stats, _ = _run_once(
        chains[0], scale, machine, seed, telemetry, profiler=probe
    )
    if _fingerprint(app, stats) != _fingerprint(ref_app, ref_stats):
        raise ConfigError(
            "host profiler perturbed the simulation: "
            f"{_fingerprint(ref_app, ref_stats)} -> {_fingerprint(app, stats)}"
        )

    # -- gate 2: overhead ratio, best-of-N paired runs -------------------------
    # The runs are ~100ms and scheduler noise on a loaded box swings single
    # runs by 10%+, so each off run is paired with a temporally adjacent on
    # run and the gate takes the *minimum pair ratio*: a false positive
    # needs every one of the ``repeats`` pairs perturbed in the same
    # direction, while a real regression shows in all of them.
    ratios = []
    for _ in range(repeats):
        off_s = _run_once(chains[0], scale, machine, seed, telemetry)[2]
        on_s = _run_once(
            chains[0], scale, machine, seed, telemetry, profiler=HostProfiler()
        )[2]
        ratios.append(on_s / off_s - 1.0)
    result.overhead_ratio = min(ratios)
    if result.overhead_ratio > overhead_budget:
        raise ConfigError(
            f"host profiler overhead {result.overhead_ratio:+.2%} exceeds the "
            f"{overhead_budget:.0%} budget (pair ratios: "
            + ", ".join(f"{r:+.2%}" for r in ratios) + ")"
        )

    # -- the sweep: one profiled run per chain ---------------------------------
    last_profiler: HostProfiler | None = None
    for chain in chains:
        profiler = HostProfiler()
        app, stats, _ = _run_once(
            chain, scale, machine, seed, telemetry, profiler=profiler
        )
        dispatch = profiler.timers.get("kernel.dispatch")
        if dispatch is None or dispatch.items <= 0:
            raise ConfigError(
                f"chain {chain!r}: kernel dispatch timer never fired "
                "(hostprof wiring broken?)"
            )
        allocs = _lane_alloc_counts(chain)
        result.points.append(
            SelfPerfPoint(
                chain=chain,
                events=app.events,
                packs=app.packs,
                kernel_events_per_s=dispatch.items_per_s,
                stream_mb_per_s=_throughput(profiler, _STREAM_TIMERS),
                codec_mb_per_s=_throughput(profiler, _CODEC_TIMERS),
                frame_mb_per_s=_throughput(profiler, _FRAME_TIMERS),
                kernel_allocs=allocs["kernel_allocs"],
                stream_allocs=allocs["stream_allocs"],
                codec_allocs=allocs["codec_allocs"],
                frame_allocs=allocs["frame_allocs"],
                elapsed_s=profiler.elapsed_s,
            )
        )
        last_profiler = profiler

    result.profile = last_profiler.summary()
    if trace_dir is not None:
        outdir = Path(trace_dir)
        outdir.mkdir(parents=True, exist_ok=True)
        last_profiler.write_chrome_trace(
            str(outdir / "BENCH_selfperf.hostprof.trace.json")
        )
        last_profiler.write_jsonl(str(outdir / "BENCH_selfperf.hostprof.jsonl"))
    return result
