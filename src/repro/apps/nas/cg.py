"""CG: conjugate gradient with butterfly row-reductions.

CG runs on a power-of-two process count arranged as an nprows x npcols
grid.  Every iteration performs a sparse matrix-vector product whose
partial sums are reduced along each process row through log2(npcols)
pairwise exchanges with partners at XOR distances — the recursive-halving
pattern that produces the characteristic block/butterfly communication
matrix of the paper's Figure 17(a) — followed by a transpose exchange and
scalar allreduces for the rho/alpha dot products.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.apps.base import ClassSpec, NASKernel, is_power_of_two


class CG(NASKernel):
    name = "CG"
    CLASSES = {
        "C": ClassSpec(size=150_000, niter=75, gops=143.4),
        "D": ClassSpec(size=1_500_000, niter=100, gops=3625.0),
    }

    @classmethod
    def validate_nprocs(cls, nprocs: int) -> None:
        if not is_power_of_two(nprocs):
            raise ConfigError(f"CG requires a power-of-two process count, got {nprocs}")

    def layout(self) -> tuple[int, int]:
        """(nprows, npcols) as NPB chooses them: square, or cols = 2 x rows."""
        log_p = int(math.log2(self.nprocs))
        npcols = 2 ** ((log_p + 1) // 2)
        nprows = self.nprocs // npcols
        return nprows, npcols

    def transpose_partner(self, rank: int) -> int:
        nprows, npcols = self.layout()
        proc_row, proc_col = divmod(rank, npcols)
        if nprows == npcols:
            return proc_col * npcols + proc_row
        # Non-square layout: NPB pairs ranks across grid halves; we use the
        # half-shift simplification, which preserves distance structure.
        return (rank + self.nprocs // 2) % self.nprocs

    def main(self, mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.size != self.nprocs:
            raise ConfigError(
                f"{self.label} built for {self.nprocs} ranks, launched on {comm.size}"
            )
        nprows, npcols = self.layout()
        proc_row, proc_col = divmod(comm.rank, npcols)
        # Local vector segment exchanged along the row (doubles).
        seg_bytes = max(64, int(8 * self.spec.size / nprows))
        stage_count = int(math.log2(npcols)) + 1 if npcols > 1 else 1
        step_cpu = self.step_compute_seconds(mpi)
        tpartner = self.transpose_partner(comm.rank)
        for _it in range(self.iterations):
            yield from mpi.compute(step_cpu)
            # Row-wise recursive halving of the matvec partial sums.
            for stage in range(int(math.log2(npcols))):
                partner_col = proc_col ^ (1 << stage)
                partner = proc_row * npcols + partner_col
                nbytes = max(64, seg_bytes >> stage)
                yield from comm.sendrecv(partner, send_nbytes=nbytes, source=partner, tag=20 + stage)
            # Transpose exchange of the result vector.
            if tpartner != comm.rank:
                yield from comm.sendrecv(tpartner, send_nbytes=seg_bytes, source=tpartner, tag=40)
            # rho and alpha dot products.
            yield from comm.allreduce(nbytes=8)
            yield from comm.allreduce(nbytes=8)
        yield from comm.barrier()
        yield from mpi.finalize()
