"""The central schema registry: one authority for every record plane.

Before this module existed, each observability plane carried its own
``*_SCHEMA`` constant and its own kind set — ``repro.telemetry/1`` in
:mod:`repro.telemetry.export`, ``repro.hostprof/1`` in
:mod:`repro.telemetry.hostprof`, ``repro.pop-metrics/1`` in
:mod:`repro.telemetry.stream_export` — and two planes (health alerts,
steering decisions) had no file schema at all.  The registry consolidates
all five:

========================  =======================================================
schema                    record kinds
========================  =======================================================
``repro.telemetry/1``     span, instant, counter, gauge, histogram, flow
``repro.hostprof/1``      meta, timer, count, span, gc, process
``repro.pop-metrics/1``   window, phase, run_summary
``repro.health/1``        one kind per alert kind (windowed detectors, fault
                          watch, application alerts) plus the paired
                          ``<kind>.cleared`` edge events
``repro.steering/1``      decision
========================  =======================================================

The plane modules import their constants *from here* (re-exporting them
under the old names for compatibility), so a schema bump happens in exactly
one place, and :func:`make_record` is the one way any exporter stamps a
``{"schema": ..., "kind": ...}`` record — the payload key order is
preserved, which keeps the bus's file sinks byte-identical to the legacy
per-plane exporters.

This module deliberately imports nothing from :mod:`repro.telemetry` (the
telemetry modules import *it*), so it can never participate in a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import ConfigError

# -- schema tags (bump on layout change) -------------------------------------------

#: virtual-time telemetry records (spans, instants, counters, gauges,
#: histograms, provenance flows)
TELEMETRY_SCHEMA = "repro.telemetry/1"

#: host-time self-profiling records (wall-clock timers, GC, RSS)
HOSTPROF_SCHEMA = "repro.hostprof/1"

#: time-resolved POP efficiency stream (windows, phases, run summary)
METRICS_SCHEMA = "repro.pop-metrics/1"

#: online health alerts (one record per raised/cleared alert)
HEALTH_SCHEMA = "repro.health/1"

#: adaptive-steering decision journal entries
STEERING_SCHEMA = "repro.steering/1"

# -- per-schema kind sets ----------------------------------------------------------

TELEMETRY_KINDS = frozenset(
    {"span", "instant", "counter", "gauge", "histogram", "flow"}
)

HOSTPROF_KINDS = frozenset({"meta", "timer", "count", "span", "gc", "process"})

METRICS_KINDS = frozenset({"window", "phase", "run_summary"})

#: Kinds raised by the health monitor's *windowed* detectors — conditions
#: that persist while their window statistic stays above threshold.  These
#: (and only these) get a paired edge-triggered ``<kind>.cleared`` alert.
#: (:mod:`repro.telemetry.monitor` re-exports this as ``WINDOWED_KINDS``.)
WINDOWED_ALERT_KINDS = frozenset(
    {
        "stream_stall",
        "backlog_growth",
        "load_imbalance",
        "worker_starvation",
        "critical_path",
    }
)

#: Suffix of the paired clear event of a windowed alert kind.
CLEARED_SUFFIX = ".cleared"

#: Kinds raised edge-triggered from cumulative fault/defence counters
#: (the monitor's ``FAULT_WATCH`` table maps series onto these).
FAULT_ALERT_KINDS = frozenset(
    {
        "analyzer_crash",
        "analyzer_failover",
        "link_degraded",
        "pack_corruption",
        "pack_drop",
        "analyzer_stall",
        "pack_checksum_reject",
        "stream_write_timeout",
        "stream_overflow_drop",
    }
)

#: Application-level alert kinds (:mod:`repro.analysis.alerts`).
APP_ALERT_KINDS = frozenset({"waiting", "message_rate", "silence"})

HEALTH_KINDS = frozenset(
    WINDOWED_ALERT_KINDS
    | FAULT_ALERT_KINDS
    | APP_ALERT_KINDS
    | {kind + CLEARED_SUFFIX for kind in WINDOWED_ALERT_KINDS}
)

STEERING_KINDS = frozenset({"decision"})

#: Record keys tried, in order, when a consumer needs "the" virtual
#: timestamp of a record (``repro.obs tail --since`` and friends).
TIME_KEYS = ("t_detect", "t", "t1", "t0", "t1_s", "t0_s")


@dataclass(frozen=True)
class SchemaSpec:
    """One registered record plane: its tag, kinds, and provenance."""

    name: str  # e.g. "repro.telemetry/1"
    kinds: frozenset[str]
    description: str = ""

    def __post_init__(self) -> None:
        if "/" not in self.name:
            raise ConfigError(
                f"schema tag {self.name!r} must look like 'family/version'"
            )
        if not self.kinds:
            raise ConfigError(f"schema {self.name!r} registered with no kinds")


class SchemaRegistry:
    """Registry of every record plane a bus or reader may encounter."""

    def __init__(self, specs: Iterable[SchemaSpec] = ()):
        self._specs: dict[str, SchemaSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: SchemaSpec) -> SchemaSpec:
        if spec.name in self._specs:
            raise ConfigError(f"schema {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> SchemaSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigError(
                f"unknown schema {name!r}; known: {', '.join(self.known())}"
            ) from None

    def known(self) -> tuple[str, ...]:
        """Every registered schema tag, sorted."""
        return tuple(sorted(self._specs))

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def kinds_for(self, name: str) -> frozenset[str]:
        return self.get(name).kinds

    def validate(self, record: Any) -> SchemaSpec:
        """Check one record against the registry; returns its spec.

        Raises :class:`ConfigError` on anything a downstream consumer could
        not safely render: a non-dict record, a missing or unregistered
        ``schema`` tag, or a ``kind`` outside the schema's kind set.
        """
        if not isinstance(record, dict):
            raise ConfigError(
                f"observability record must be a dict, got {type(record).__name__}"
            )
        schema = record.get("schema")
        if not isinstance(schema, str):
            raise ConfigError(f"record carries no schema tag: {record!r:.120}")
        spec = self.get(schema)
        kind = record.get("kind")
        if kind not in spec.kinds:
            raise ConfigError(
                f"schema {schema!r} has no record kind {kind!r} "
                f"(known: {', '.join(sorted(spec.kinds))})"
            )
        return spec


def default_registry() -> SchemaRegistry:
    """A fresh registry pre-loaded with all five built-in record planes."""
    return SchemaRegistry(
        [
            SchemaSpec(
                TELEMETRY_SCHEMA,
                TELEMETRY_KINDS,
                "virtual-time spans, counters, gauges, histograms, flows",
            ),
            SchemaSpec(
                HOSTPROF_SCHEMA,
                HOSTPROF_KINDS,
                "host-time self-profiling (wall-clock timers, GC, RSS)",
            ),
            SchemaSpec(
                METRICS_SCHEMA,
                METRICS_KINDS,
                "time-resolved POP efficiency windows and phases",
            ),
            SchemaSpec(
                HEALTH_SCHEMA,
                HEALTH_KINDS,
                "online health alerts (raised and cleared)",
            ),
            SchemaSpec(
                STEERING_SCHEMA,
                STEERING_KINDS,
                "adaptive-steering decision journal",
            ),
        ]
    )


#: The shared default registry (the five built-in planes).  Callers that
#: grow private schemas should build their own via :func:`default_registry`
#: and :meth:`SchemaRegistry.register` rather than mutating this one.
REGISTRY = default_registry()


def make_record(schema: str, kind: str, **payload: Any) -> dict[str, Any]:
    """Assemble one schema-tagged record: ``{"schema", "kind", **payload}``.

    This is the single record-assembly point every exporter goes through
    (telemetry JSONL, hostprof JSONL, the POP metrics stream, the bus's
    health/steering bridges).  Keyword order is preserved, so a record
    built here serializes byte-identically to the hand-stamped dicts the
    exporters used to build.  The payload may not itself carry ``schema``
    or ``kind`` keys — pass them positionally.
    """
    return {"schema": schema, "kind": kind, **payload}


def record_time(record: dict[str, Any]) -> float | None:
    """The record's virtual timestamp, or None for time-less records.

    Planes stamp time under different keys (``t_detect`` for alerts,
    ``t`` for decisions and instants, ``t0``/``t1`` for spans and
    windows); consumers filtering on time (``repro.obs tail --since``)
    use the first key present, preferring end-of-interval stamps so a
    window is "at or after" ``--since`` when it *closed* then.
    """
    for key in TIME_KEYS:
        value = record.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    return None
