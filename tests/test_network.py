"""Machine specs, fat-tree topology and cluster flow model."""

import pytest

from repro.errors import ConfigError
from repro.network import CURIE, Cluster, FatTree, TERA100
from repro.network.cluster import block_placement
from repro.network.machine import small_test_machine
from repro.simt import Kernel
from repro.util.units import GB


class TestMachineSpec:
    def test_paper_machine_sizes(self):
        assert TERA100.total_cores == 4370 * 32  # ~140k cores
        assert CURIE.total_cores == 5040 * 16  # ~80k cores

    def test_fs_scaling_matches_paper(self):
        # Paper Sec. IV-B: 500 GB/s scaled to 2560 cores ~ 9.1 GB/s.
        assert TERA100.fs_job_bandwidth(2560) == pytest.approx(9.14e9, rel=0.01)

    def test_fs_share_capped_at_total(self):
        assert TERA100.fs_job_bandwidth(10**9) == TERA100.fs_bandwidth_total

    def test_nic_effective_monotone_in_ranks(self):
        values = [TERA100.nic_effective_bandwidth(n) for n in range(1, 33)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_nic_effective_plateau(self):
        plateau = TERA100.nic_bandwidth * TERA100.nic_efficiency
        assert TERA100.nic_effective_bandwidth(32) == pytest.approx(plateau)

    def test_single_rank_injection_cap(self):
        assert TERA100.nic_effective_bandwidth(1) == TERA100.rank_injection_max

    def test_bisection_calibration(self):
        # 160 nodes -> the paper's measured 98.5 GB/s aggregate (Fig. 14).
        assert TERA100.bisection_bandwidth(160) == pytest.approx(98.56e9, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigError):
            small_test_machine(nodes=0)
        with pytest.raises(ConfigError):
            small_test_machine(nic_bandwidth=0)
        with pytest.raises(ConfigError):
            small_test_machine(nic_efficiency=1.5)


class TestFatTree:
    def test_leaf_grouping(self):
        ft = FatTree(nodes=40, radix=18)
        assert ft.leaf_switches == 3
        assert ft.leaf_of(0) == 0
        assert ft.leaf_of(17) == 0
        assert ft.leaf_of(18) == 1

    def test_hops(self):
        ft = FatTree(nodes=40, radix=18)
        assert ft.hops(3, 3) == 0
        assert ft.hops(0, 17) == 2
        assert ft.hops(0, 20) == 4

    def test_latency_model(self):
        ft = FatTree(nodes=40, radix=18)
        assert ft.latency(0, 20, per_hop=1e-6, base=2e-6) == pytest.approx(6e-6)

    def test_same_leaf_nodes(self):
        ft = FatTree(nodes=40, radix=18)
        assert list(ft.same_leaf_nodes(20)) == list(range(18, 36))

    def test_node_bounds_checked(self):
        ft = FatTree(nodes=4)
        with pytest.raises(ConfigError):
            ft.leaf_of(4)
        with pytest.raises(ConfigError):
            ft.hops(0, 99)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FatTree(0)
        with pytest.raises(ConfigError):
            FatTree(10, radix=1)


class TestPlacement:
    def test_block_fill(self, machine):
        p = block_placement(10, machine)  # 4 cores/node
        assert p.node_of_rank[:4] == (0, 0, 0, 0)
        assert p.node_of_rank[4:8] == (1, 1, 1, 1)
        assert p.ranks_per_node == {0: 4, 1: 4, 2: 2}
        assert p.nodes_used == 3

    def test_oversubscription_rejected(self, machine):
        with pytest.raises(ConfigError):
            block_placement(machine.total_cores + 1, machine)

    def test_empty_rejected(self, machine):
        with pytest.raises(ConfigError):
            block_placement(0, machine)


class TestCluster:
    def test_same_node_detection(self, machine):
        cluster = Cluster(Kernel(), machine, nranks=8)
        assert cluster.same_node(0, 3)
        assert not cluster.same_node(0, 4)

    def test_rank_bounds(self, machine):
        cluster = Cluster(Kernel(), machine, nranks=8)
        with pytest.raises(ConfigError):
            cluster.node_of(8)

    def test_intranode_faster_than_internode(self, machine):
        kernel = Kernel()
        cluster = Cluster(kernel, machine, nranks=8)
        times = []

        def proc(k):
            t0 = k.now
            yield cluster.transfer(0, 1, 1_000_000)  # same node
            times.append(k.now - t0)
            t0 = k.now
            yield cluster.transfer(0, 4, 1_000_000)  # cross node
            times.append(k.now - t0)

        kernel.spawn(proc(kernel))
        kernel.run()
        assert times[0] < times[1]

    def test_incast_serializes_on_ingress(self, machine):
        """Many senders to one node cannot exceed its NIC bandwidth."""
        kernel = Kernel()
        cluster = Cluster(kernel, machine, nranks=32)  # 8 nodes
        nbytes = 10_000_000
        done = []

        def sender(k, src):
            yield cluster.transfer(src, 0, nbytes)
            done.append(k.now)

        # 7 senders on distinct nodes all target node 0.
        for src in (4, 8, 12, 16, 20, 24, 28):
            kernel.spawn(sender(kernel, src))
        kernel.run()
        total = 7 * nbytes
        ingress_bw = machine.nic_effective_bandwidth(4)
        assert max(done) >= total / ingress_bw

    def test_transfer_accounting(self, machine):
        kernel = Kernel()
        cluster = Cluster(kernel, machine, nranks=8)

        def proc(k):
            yield cluster.transfer(0, 1, 100)
            yield cluster.transfer(0, 4, 200)

        kernel.spawn(proc(kernel))
        kernel.run()
        assert cluster.bytes_intranode == 100
        assert cluster.bytes_internode == 200

    def test_crossleaf_traffic_hits_bisection(self):
        machine = small_test_machine(nodes=40, cores_per_node=1)
        kernel = Kernel()
        cluster = Cluster(kernel, machine, nranks=40)

        def proc(k):
            yield cluster.transfer(0, 1, 100)  # same leaf (radix 18)
            yield cluster.transfer(0, 39, 100)  # cross leaf

        kernel.spawn(proc(kernel))
        kernel.run()
        assert cluster.bytes_crossleaf == 100

    def test_negative_transfer_rejected(self, machine):
        cluster = Cluster(Kernel(), machine, nranks=4)
        with pytest.raises(ConfigError):
            cluster.transfer(0, 1, -5)

    def test_nic_utilization_reporting(self, machine):
        kernel = Kernel()
        cluster = Cluster(kernel, machine, nranks=8)

        def proc(k):
            yield cluster.transfer(0, 4, 10 * GB // 100)

        kernel.spawn(proc(kernel))
        kernel.run()
        util = cluster.nic_utilization()
        assert util[0][0] > 0.9  # egress of node 0 busy for most of the run
        assert util[1][1] > 0.9  # ingress of node 1
