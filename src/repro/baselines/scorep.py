"""Score-P models: runtime profile and OTF2 tracing over SIONlib.

Matches the paper's Figure-16 configuration: Score-P 1.1.1, MPI-only
instrumentation (no compiler instrumentation), default buffer configuration,
SIONlib containers for the trace mode.

* **Profile mode** — per-call profile-tree update in memory; at finalize
  every rank writes its profile file: N simultaneous creates against the
  metadata server plus N small writes — the classic metadata storm that
  grows with scale.
* **Trace mode** — per-call OTF2 event encoding into the default 16 MB
  memory buffer, flushed through the SIONlib container on overflow and at
  finalize.  Data volume is what hurts: the shared FS bandwidth share is
  orders of magnitude below the network bisection the online coupling uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.tracer import OTF2_BYTES_PER_EVENT, TraceWriterState
from repro.iosim.filesystem import ParallelFS
from repro.iosim.sionlib import SionFile
from repro.mpi.pmpi import CallRecord, Interceptor

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import ProgramAPI, RankContext


class ScorePProfileInterceptor(Interceptor):
    """Score-P runtime summarization (profile) mode."""

    #: per-call profile-tree node lookup + accumulation
    PER_CALL_CPU = 0.5e-6
    #: size of one rank's profile file (.cubex contribution)
    PROFILE_BYTES_PER_RANK = 64 * 1024

    def __init__(self, mpi: "ProgramAPI", fs: ParallelFS, amortize_fixed: float = 1.0):
        self.mpi = mpi
        self.fs = fs
        self.amortize_fixed = amortize_fixed
        self.calls = 0

    def on_exit(self, ctx: "RankContext", record: CallRecord):
        if record.name == "MPI_Finalize":
            return self._finalize()
        self.calls += 1
        return self.PER_CALL_CPU

    def _finalize(self):
        """Every rank creates and writes its profile file."""
        scale = self.amortize_fixed
        yield from self.fs.metadata_op(scale)
        yield self.fs.raw_write(int(self.PROFILE_BYTES_PER_RANK * scale))
        yield from self.fs.metadata_op(scale)


class ScorePTraceInterceptor(Interceptor):
    """Score-P OTF2 tracing over SIONlib."""

    #: per-call OTF2 encode (timestamps, region ids, attribute writes)
    PER_CALL_CPU = 0.7e-6
    #: Score-P default trace memory (SCOREP_TOTAL_MEMORY)
    BUFFER_BYTES = 16 * 1024 * 1024

    def __init__(
        self,
        mpi: "ProgramAPI",
        fs: ParallelFS,
        sion: SionFile,
        amortize_fixed: float = 1.0,
        bytes_per_event: int = OTF2_BYTES_PER_EVENT,
    ):
        self.mpi = mpi
        self.fs = fs
        self.writer = TraceWriterState(
            fs,
            rank=mpi.ctx.global_rank,
            bytes_per_event=bytes_per_event,
            buffer_bytes=self.BUFFER_BYTES,
            sion=sion,
            amortize_fixed=amortize_fixed,
        )
        self.calls = 0

    def on_exit(self, ctx: "RankContext", record: CallRecord):
        if record.name == "MPI_Init":
            return self.writer.open()
        if record.name == "MPI_Finalize":
            return self._finalize()
        return self._record()

    def _record(self):
        self.calls += 1
        yield self.mpi.ctx.kernel.timeout(self.PER_CALL_CPU)
        yield from self.writer.record(1)

    def _finalize(self):
        yield from self._record()
        yield from self.writer.close()

    @property
    def trace_bytes(self) -> int:
        return self.writer.trace_bytes
