"""Unified observability bus: one streaming record plane for the system.

The reproduction grew five observability planes PR by PR — virtual-time
telemetry JSONL, host-time profiling, the POP efficiency NDJSON stream,
health alerts, steering decisions — each with its own schema tag, writer
and file format.  This package gives them a single in-situ feed, in the
spirit of the paper's own thesis (measurements as online streams, not
post-mortem files):

* :mod:`repro.obs.registry` — the central schema registry (all five
  ``schema`` tags and their kind sets) plus :func:`make_record`, the one
  record-assembly point;
* :mod:`repro.obs.bus` — :class:`ObservabilityBus`, validate-on-publish
  fan-out with per-sink delivery/drop/error accounting;
* :mod:`repro.obs.sinks` — NDJSON :class:`FileSink` (byte-identical to
  the legacy exporters), bounded :class:`RingSink` for live query, and
  :class:`TailServer`, a line-delimited TCP/Unix-socket live-tail feed;
* :mod:`repro.obs.archive` — torn-tail-tolerant NDJSON reading and the
  run-archive query engine behind ``python -m repro.obs``.

Wire-up is one call on a session::

    session = CouplingSession(telemetry=Telemetry())
    bus = session.enable_observability(path="run.ndjson", tail="127.0.0.1:0")
    ...
    result = session.run()       # result.obs carries the bus summary
    # meanwhile:  python -m repro.obs tail run.ndjson --schema repro.health/1
"""

from repro.obs.archive import ArchiveScan, iter_archive, iter_ndjson, match_record
from repro.obs.bus import ObservabilityBus, SinkBinding
from repro.obs.registry import (
    HEALTH_SCHEMA,
    HOSTPROF_SCHEMA,
    METRICS_SCHEMA,
    REGISTRY,
    STEERING_SCHEMA,
    TELEMETRY_SCHEMA,
    SchemaRegistry,
    SchemaSpec,
    default_registry,
    make_record,
    record_time,
)
from repro.obs.sinks import FileSink, RingSink, TailServer, parse_address

__all__ = [
    "ObservabilityBus",
    "SinkBinding",
    "SchemaRegistry",
    "SchemaSpec",
    "REGISTRY",
    "default_registry",
    "make_record",
    "record_time",
    "TELEMETRY_SCHEMA",
    "HOSTPROF_SCHEMA",
    "METRICS_SCHEMA",
    "HEALTH_SCHEMA",
    "STEERING_SCHEMA",
    "FileSink",
    "RingSink",
    "TailServer",
    "parse_address",
    "iter_ndjson",
    "iter_archive",
    "match_record",
    "ArchiveScan",
]
