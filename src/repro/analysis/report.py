"""Profiling reports: one chapter per instrumented application (paper IV-D).

The paper emits a 20-70 page LaTeX document; we render Markdown with the
same structure: per application a summary, the MPI interface profile, the
topological module's matrices/graph statistics, density-map extracts and the
wait-state summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.density import DensityMaps
from repro.analysis.profiler import MPIProfile
from repro.analysis.topology import CommMatrix
from repro.analysis.waitstate import WaitState
from repro.util.units import fmt_bw, fmt_bytes, fmt_time


@dataclass
class ApplicationReport:
    """One report chapter."""

    app: str
    app_size: int
    profile: Optional[MPIProfile] = None
    topology: Optional[CommMatrix] = None
    density: Optional[DensityMaps] = None
    waitstate: Optional[WaitState] = None
    alerts: object = None  # AlertMonitor (extension module), if enabled
    otf2proxy: object = None  # OTF2Proxy (extension module), if enabled
    latesender: object = None  # LateSenderAnalysis (extension), if enabled

    def render(self, verbosity: int = 1) -> str:
        lines = [f"## Application: {self.app} ({self.app_size} ranks)", ""]
        if self.profile is not None:
            lines += self._render_profile(verbosity)
        if self.topology is not None:
            lines += self._render_topology(verbosity)
        if self.density is not None:
            lines += self._render_density(verbosity)
        if self.waitstate is not None:
            lines += self._render_waitstate()
        if self.alerts is not None:
            lines += self._render_alerts()
        if self.otf2proxy is not None:
            lines += self._render_proxy()
        if self.latesender is not None:
            lines += self._render_latesender()
        return "\n".join(lines)

    def _render_profile(self, verbosity: int) -> list[str]:
        p = self.profile
        out = ["### MPI profile", ""]
        out.append(f"- events analysed: {p.events_total}")
        out.append(f"- wall-time estimate: {fmt_time(p.walltime_estimate)}")
        out.append(f"- time inside MPI: {fmt_time(p.mpi_time_total)}")
        out.append(f"- instrumentation bandwidth Bi: {fmt_bw(p.instrumentation_bandwidth())}")
        out.append("")
        out.append("```")
        out.append(p.table().render())
        out.append("```")
        out.append("")
        return out

    def _render_topology(self, verbosity: int) -> list[str]:
        t = self.topology
        hits, size, time = t.totals()
        out = ["### Point-to-point topology", ""]
        out.append(f"- messages: {int(hits)}")
        out.append(f"- total size: {fmt_bytes(size)}")
        out.append(f"- total time: {fmt_time(time)}")
        out.append(f"- communicating pairs: {len(t.cells)}")
        degrees = t.degree_histogram()
        deg_txt = ", ".join(f"{d} peers x{c}" for d, c in sorted(degrees.items()))
        out.append(f"- out-degree histogram: {deg_txt}")
        top = t.top_pairs("size", k=5)
        if top:
            out.append("- heaviest pairs (size): " + ", ".join(
                f"{s}->{d} {fmt_bytes(w)}" for s, d, w in top
            ))
        if verbosity >= 2 and t.app_size <= 64:
            out.append("")
            out.append("```dot")
            out.append(t.to_dot("size"))
            out.append("```")
        out.append("")
        return out

    def _render_density(self, verbosity: int) -> list[str]:
        d = self.density
        out = ["### Density maps", ""]
        for call in d.calls_seen():
            imb = d.imbalance(call, "time")
            vec = d.map_for(call, "hits")
            out.append(
                f"- {call}: hits/rank [{vec.min():.0f}, {vec.max():.0f}], "
                f"time imbalance {imb:.2f}"
            )
        if verbosity >= 2:
            for call in ("MPI_Send", "MPI_Waitall"):
                if call in d.calls_seen():
                    out.append("")
                    out.append("```")
                    out.append(d.render_grid(call, "time"))
                    out.append("```")
        out.append("")
        return out

    def _render_alerts(self) -> list[str]:
        out = ["### Real-time alerts", ""]
        if not self.alerts.alerts:
            out.append("- none raised")
        else:
            kinds = self.alerts.by_kind()
            out.append(
                "- raised: " + ", ".join(f"{k} x{n}" for k, n in sorted(kinds.items()))
            )
            for alert in self.alerts.alerts[:10]:
                out.append(f"  - {alert.describe()}")
        out.append("")
        return out

    def _render_proxy(self) -> list[str]:
        p = self.otf2proxy
        out = ["### Selective trace (OTF2 proxy)", ""]
        out.append(f"- events selected: {p.events_selected} of {p.events_seen} "
                   f"(selectivity {p.selectivity:.3f})")
        out.append(f"- trace size: {fmt_bytes(p.trace_bytes())}")
        out.append("")
        return out

    def _render_latesender(self) -> list[str]:
        s = self.latesender.summary()
        out = ["### Late-sender analysis (distributed)", ""]
        out.append(f"- matched send/receive pairs: {int(s['matched_pairs'])}")
        out.append(
            f"- unmatched: {int(s['unmatched_sends'])} sends, "
            f"{int(s['unmatched_recvs'])} receives"
        )
        out.append(f"- total lateness: {fmt_time(s['late_time_total'])}")
        worst = self.latesender.worst_receivers(3)
        if worst:
            out.append(
                "- worst receivers: "
                + ", ".join(f"rank {r} ({fmt_time(t)})" for r, t in worst)
            )
        out.append("")
        return out

    def _render_waitstate(self) -> list[str]:
        w = self.waitstate
        s = w.summary()
        out = ["### Wait-state analysis (preliminary)", ""]
        out.append(f"- total waiting time: {fmt_time(s['wait_time_total'])}")
        out.append(f"- mean waiting fraction: {s['wait_fraction_mean']:.3f}")
        out.append(f"- max waiting fraction: {s['wait_fraction_max']:.3f}")
        out.append(f"- collective time: {fmt_time(s['collective_time_total'])}")
        out.append(f"- late ranks (>1.5x mean wait): {int(s['late_rank_count'])}")
        out.append("")
        return out


@dataclass
class ProfileReport:
    """The full multi-application report."""

    chapters: list[ApplicationReport] = field(default_factory=list)
    #: Self-telemetry summary (``Telemetry.summary()``) when the measurement
    #: pipeline itself ran instrumented; None otherwise.
    telemetry: Optional[dict] = None
    #: Online health-monitor summary (``HealthMonitor.summary()``) when a
    #: monitor was attached to the run; None otherwise.
    health: Optional[dict] = None
    #: Flow-provenance summary (``FlowRegistry.summary()``) when causal
    #: pack tracing was enabled for the run; None otherwise.
    flows: Optional[dict] = None
    #: Event-reduction summary (chain spec, wire vs content bytes, codec
    #: CPU) when a reduction chain was active; None for identity runs.
    reduction: Optional[dict] = None
    #: Time-resolved POP efficiency summary (``PopMetricsEngine.summary()``)
    #: when online efficiency metrics were enabled; None otherwise.
    efficiency: Optional[dict] = None
    #: Adaptive-steering summary (``SteeringController.summary()``) when the
    #: control loop was enabled for the run; None otherwise.
    steering: Optional[dict] = None
    #: Unified observability-bus summary (``ObservabilityBus.summary()``)
    #: when the bus was enabled for the run; None otherwise.
    obs: Optional[dict] = None

    def chapter(self, app: str) -> ApplicationReport:
        for ch in self.chapters:
            if ch.app == app:
                return ch
        raise KeyError(f"no report chapter for application {app!r}")

    def render(self, verbosity: int = 1) -> str:
        header = [
            "# Online profiling report",
            "",
            f"Applications profiled concurrently: {len(self.chapters)}",
            "",
        ]
        parts = header + [ch.render(verbosity) for ch in self.chapters]
        if self.telemetry:
            parts.append(self._render_telemetry())
        if self.health:
            parts.append(self._render_health())
        if self.flows:
            parts.append(self._render_flows())
        if self.reduction:
            parts.append(self._render_reduction())
        if self.efficiency:
            parts.append(self._render_efficiency())
        if self.steering:
            parts.append(self._render_steering())
        if self.obs:
            parts.append(self._render_obs())
        return "\n".join(parts)

    def _render_telemetry(self) -> str:
        """The measurement pipeline's own vitals (paper-spirit: online too)."""
        s = self.telemetry
        out = ["## Self-telemetry (measurement pipeline)", ""]
        head = s.get("headline", {})
        out.append(f"- kernel events dispatched: {head.get('events_dispatched', 0)}")
        out.append(f"- bytes streamed: {fmt_bytes(head.get('bytes_streamed', 0))}")
        utilization = head.get("worker_utilization")
        if utilization is not None:
            out.append(f"- blackboard worker utilization: {utilization:.3f}")
        out.append(f"- spans recorded: {head.get('spans_recorded', 0)}")
        spans = s.get("spans", {})
        if spans:
            top = sorted(spans.items(), key=lambda kv: -kv[1]["total_s"])[:6]
            out.append("- busiest spans: " + ", ".join(
                f"{name} x{int(v['count'])} ({fmt_time(v['total_s'])})"
                for name, v in top
            ))
        for name, h in sorted(s.get("histograms", {}).items()):
            if h.get("count"):
                out.append(
                    f"- {name}: n={h['count']} mean={h['mean']:.3g} "
                    f"p95={h['p95']:.3g} max={h['max']:.3g}"
                )
        for name, g in sorted(s.get("gauges", {}).items()):
            out.append(
                f"- {name}: last={g['last']:.0f} peak={g['peak']:.0f} "
                f"({int(g['tracks'])} tracks)"
            )
        out.append("")
        return "\n".join(out)

    def _render_health(self) -> str:
        """Online health monitor findings and per-window timelines."""
        from repro.util.tables import Table

        h = self.health
        out = ["## Health (online monitor)", ""]
        out.append(
            f"- ticks: {h.get('ticks', 0)} at {h.get('interval_s', 0):.3g}s "
            f"resolution, {h.get('window_s', 0):.3g}s detector window"
        )
        out.append(f"- timeline series tracked: {h.get('series_tracked', 0)}")
        published = h.get("published_to_blackboard", 0)
        if published:
            out.append(f"- alerts analyzed by the blackboard: {published}")
        router = h.get("router")
        if router is not None:
            dropped = router.get("dropped", 0)
            line = f"- alerts routed: {router.get('routed', 0)}"
            if dropped:
                line += f" ({dropped} dropped by the router's bounded history)"
            out.append(line)
        alerts = h.get("alerts", [])
        if not alerts:
            out.append("- alerts raised: none")
        else:
            kinds = h.get("by_kind", {})
            out.append(
                "- alerts raised: "
                + ", ".join(f"{k} x{n}" for k, n in sorted(kinds.items()))
            )
            for alert in alerts[:12]:
                detail = alert.get("detail") or {}
                extra = (
                    " (" + ", ".join(f"{k}={v}" for k, v in sorted(detail.items())) + ")"
                    if detail
                    else ""
                )
                out.append(
                    f"  - [{alert['t_detect']:.6f}s] {alert['severity'].upper()} "
                    f"{alert['kind']}: {alert['value']:.3g} vs "
                    f"{alert['threshold']:.3g}{extra}"
                )
            if len(alerts) > 12:
                out.append(f"  - ... and {len(alerts) - 12} more")
            unresolved = h.get("unresolved", [])
            if unresolved:
                out.append("- still firing at shutdown: " + ", ".join(unresolved))
        series = h.get("series", {})
        if series:
            out.append("")
            table = Table(
                ["series", "last", "high_water", "rate_per_s"],
                title="Watched timelines (trailing window)",
            )
            for name, s in sorted(series.items()):
                table.add_row(name, s["last"], s["high_water"], s["rate"])
            out.append("```")
            out.append(table.render())
            out.append("```")
        out.append("")
        return "\n".join(out)

    def _render_flows(self) -> str:
        """Per-stage latency waterfall of the measurement pipeline itself."""
        from repro.util.tables import Table

        f = self.flows
        out = ["## Pipeline latency (flow provenance)", ""]
        out.append(
            f"- flows traced: {f.get('flows_traced', 0)} "
            f"(sample rate {f.get('sample_rate', 1.0):.3g}), "
            f"completed: {f.get('flows_completed', 0)}, "
            f"dropped: {f.get('flows_dropped', 0)}"
        )
        losses = f.get("losses") or {}
        if losses:
            out.append(
                "- losses by cause: "
                + ", ".join(f"{k} x{n}" for k, n in sorted(losses.items()))
            )
        retry = f.get("retry_delay_s", 0.0)
        if retry:
            out.append(f"- backpressure retry delay attributed: {fmt_time(retry)}")
        stages = f.get("stages") or {}
        end_to_end = f.get("end_to_end")
        if stages:
            table = Table(
                ["stage", "count", "p50", "p95", "mean", "total"],
                title="Per-stage latency",
            )
            for stage, s in stages.items():
                table.add_row(
                    stage, s["count"], fmt_time(s["p50_s"]), fmt_time(s["p95_s"]),
                    fmt_time(s["mean_s"]), fmt_time(s["total_s"]),
                )
            if end_to_end:
                table.add_row(
                    "end_to_end", end_to_end["count"], fmt_time(end_to_end["p50_s"]),
                    fmt_time(end_to_end["p95_s"]), fmt_time(end_to_end["mean_s"]),
                    fmt_time(end_to_end["total_s"]),
                )
            out.append("")
            out.append("```")
            out.append(table.render())
            out.append("```")
        critical = f.get("critical_path")
        if critical:
            shares = critical.get("share") or {}
            top = sorted(shares.items(), key=lambda kv: -kv[1])[:3]
            out.append(
                f"- critical path: flow {critical['flow_id']:#x} "
                f"end-to-end {fmt_time(critical['total_s'])}, dominated by "
                + ", ".join(f"{name} ({share:.0%})" for name, share in top)
            )
        watermarks = f.get("watermarks") or {}
        if watermarks:
            laggiest = sorted(
                watermarks.items(), key=lambda kv: -kv[1]["max_lag_s"]
            )[:4]
            out.append(
                "- laggiest writers: "
                + ", ".join(
                    f"{name} (max lag {fmt_time(w['max_lag_s'])}, "
                    f"{int(w['in_flight'])} in flight)"
                    for name, w in laggiest
                )
            )
        out.append("")
        return "\n".join(out)

    def _render_reduction(self) -> str:
        """Wire-volume savings of the event-reduction codec chain."""
        r = self.reduction
        out = ["## Reduction", ""]
        out.append(f"- chain: `{r.get('chain') or 'identity'}`")
        content = r.get("bytes_content", 0)
        wire = r.get("bytes_wire", 0)
        out.append(
            f"- stream volume: {fmt_bytes(wire)} on the wire for "
            f"{fmt_bytes(content)} of content "
            f"(ratio {r.get('ratio', 0.0):.3f})"
        )
        sampled = r.get("events_sampled_out", 0)
        if sampled:
            out.append(f"- events sampled out (exact accounting): {sampled}")
        out.append(
            f"- codec CPU charged: encode {fmt_time(r.get('encode_cpu_s', 0.0))}, "
            f"decode {fmt_time(r.get('decode_cpu_s', 0.0))}"
        )
        codecs = r.get("codecs_seen") or {}
        if codecs:
            out.append(
                "- descriptors seen at analysis: "
                + ", ".join(f"`{k}` x{n}" for k, n in sorted(codecs.items()))
            )
        out.append("")
        return "\n".join(out)

    def _render_efficiency(self) -> str:
        """Per-phase POP efficiency metrics from the online engine."""
        from repro.util.tables import Table

        e = self.efficiency
        out = ["## Efficiency timeline", ""]
        out.append(
            f"- windows closed: {e.get('windows', 0)} at "
            f"{e.get('window_s', 0):.3g}s resolution over {e.get('nranks', 0)} "
            f"rank tracks"
        )
        phases = e.get("phases", [])
        out.append(
            f"- phases detected: {len(phases)} "
            f"(change-point signal: {e.get('signal', '?')})"
        )
        eor = e.get("end_of_run", {})
        if eor:
            out.append(
                "- end of run: PE {pe:.3f} = LB {lb:.3f} x CommE {ce:.3f}, "
                "SerE {se:.3f}, instrumentation share {sh:.4f}".format(
                    pe=eor.get("parallel_efficiency", 0.0),
                    lb=eor.get("load_balance", 0.0),
                    ce=eor.get("communication_efficiency", 0.0),
                    se=eor.get("serialization_efficiency", 0.0),
                    sh=eor.get("instrumentation_share", 0.0),
                )
            )
        if phases:
            table = Table(
                ["phase", "t0_s", "t1_s", "windows", "PE", "LB", "CommE",
                 "SerE", "instr_share"],
                title="Per-phase efficiency",
            )
            for phase in phases:
                m = phase.get("metrics", {})
                table.add_row(
                    phase.get("index", 0),
                    f"{phase.get('t0', 0.0):.6f}",
                    f"{phase.get('t1', 0.0):.6f}",
                    phase.get("windows", 0),
                    f"{m.get('parallel_efficiency', 0.0):.4f}",
                    f"{m.get('load_balance', 0.0):.4f}",
                    f"{m.get('communication_efficiency', 0.0):.4f}",
                    f"{m.get('serialization_efficiency', 0.0):.4f}",
                    f"{m.get('instrumentation_share', 0.0):.5f}",
                )
            out.append("")
            out.append("```")
            out.append(table.render())
            out.append("```")
        stream = e.get("stream_last") or {}
        if stream:
            out.append(
                "- stream health (last window): "
                + ", ".join(f"{k}={v:.3g}" for k, v in sorted(stream.items()))
            )
        out.append("")
        return "\n".join(out)

    def _render_steering(self) -> str:
        """The control loop's decision journal: alert -> decision -> actuation."""
        s = self.steering
        out = ["## Steering", ""]
        policy = s.get("policy") or {}
        out.append(f"- policy: `{policy.get('name', '?')}`")
        decisions = s.get("decisions", [])
        if not decisions:
            out.append(
                f"- decisions: none ({s.get('alerts_seen', 0)} alerts observed, "
                "run untouched)"
            )
        else:
            by_action = s.get("by_action", {})
            out.append(
                "- decisions: "
                + ", ".join(f"{k} x{n}" for k, n in sorted(by_action.items()))
            )
            for d in decisions[:12]:
                detail = d.get("detail") or {}
                extra = (
                    " (" + ", ".join(f"{k}={v}" for k, v in sorted(detail.items())) + ")"
                    if detail
                    else ""
                )
                latency = ""
                before, after = d.get("latency_before_s"), d.get("latency_after_s")
                if before is not None and after is not None:
                    latency = (
                        f" [latency {fmt_time(before)} -> {fmt_time(after)}]"
                    )
                out.append(
                    f"  - [{d['t']:.6f}s] {d['action']} <- "
                    f"{d['trigger_kind']}{extra}{latency}"
                )
            if len(decisions) > 12:
                out.append(f"  - ... and {len(decisions) - 12} more")
        final = s.get("final") or {}
        if final:
            out.append(
                f"- final state: chain `{final.get('chain', 'identity')}`, "
                f"{final.get('workers', 1)} analyzer worker(s), "
                f"{final.get('rebalances', 0)} rebalance round(s)"
            )
        out.append("")
        return "\n".join(out)

    def _render_obs(self) -> str:
        """The unified record plane: what was published where, what dropped."""
        s = self.obs
        out = ["## Observability", ""]
        out.append(
            f"- records published: {s.get('published', 0)} "
            f"({s.get('rejected', 0)} rejected at publish)"
        )
        for schema, kinds in sorted((s.get("schemas") or {}).items()):
            total = sum(kinds.values())
            breakdown = ", ".join(f"{k} x{n}" for k, n in sorted(kinds.items()))
            out.append(f"  - `{schema}`: {total} ({breakdown})")
        for sink in s.get("sinks", []):
            line = (
                f"- sink `{sink.get('sink', '?')}`: "
                f"{sink.get('delivered', 0)} delivered, "
                f"{sink.get('dropped', 0)} dropped, "
                f"{sink.get('errors', 0)} errors"
            )
            if sink.get("path"):
                line += f" -> {sink['path']}"
            if sink.get("address"):
                line += f" @ {sink['address']}"
            out.append(line)
        out.append("")
        return "\n".join(out)

    def __contains__(self, app: str) -> bool:
        return any(ch.app == app for ch in self.chapters)
