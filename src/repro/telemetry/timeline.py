"""Ring-buffer time series over the telemetry instruments.

The monitor's data plane: a :class:`Timeline` periodically snapshots every
counter, gauge and histogram of one :class:`~repro.telemetry.Telemetry`
into fixed-capacity ring buffers stamped in virtual kernel time, so online
detectors (and report tables) can ask windowed questions — rate over the
last window, mean/p50/p95 of a level series, trend slope, high-water mark —
with strictly bounded memory regardless of run length.

Two series kinds exist: ``"cum"`` series hold cumulative values (counter
values, histogram count/total) whose first derivative is the interesting
signal, and ``"level"`` series hold instantaneous levels (gauge values)
where the distribution over the window matters.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.core import Telemetry

#: cumulative series: monotone totals, differentiate for rates
CUMULATIVE = "cum"
#: level series: instantaneous values, aggregate over the window
LEVEL = "level"


class TimeSeries:
    """Fixed-capacity ring of ``(t, value)`` samples in virtual time."""

    __slots__ = ("name", "kind", "capacity", "_buf", "_next", "_full",
                 "high_water", "low_water", "total_points")

    def __init__(self, name: str, kind: str = LEVEL, capacity: int = 256):
        if kind not in (CUMULATIVE, LEVEL):
            raise ConfigError(f"unknown series kind {kind!r}")
        if capacity < 2:
            raise ConfigError(f"series capacity must be >= 2, got {capacity}")
        self.name = name
        self.kind = kind
        self.capacity = capacity
        self._buf: list[tuple[float, float]] = []
        self._next = 0  # write index once the ring is full
        self._full = False
        self.high_water = -math.inf
        self.low_water = math.inf
        self.total_points = 0

    def append(self, t: float, value: float) -> None:
        value = float(value)
        self.total_points += 1
        if value > self.high_water:
            self.high_water = value
        if value < self.low_water:
            self.low_water = value
        if not self._full:
            self._buf.append((t, value))
            if len(self._buf) == self.capacity:
                self._full = True
            return
        self._buf[self._next] = (t, value)
        self._next = (self._next + 1) % self.capacity

    def __len__(self) -> int:
        return len(self._buf)

    def points(self) -> list[tuple[float, float]]:
        """Retained samples in chronological order."""
        if not self._full or self._next == 0:
            return list(self._buf)
        return self._buf[self._next:] + self._buf[: self._next]

    def latest(self) -> tuple[float, float] | None:
        if not self._buf:
            return None
        idx = (self._next - 1) % len(self._buf) if self._full else len(self._buf) - 1
        return self._buf[idx]

    def window(self, t_lo: float, t_hi: float = math.inf) -> list[tuple[float, float]]:
        """Retained samples with ``t_lo <= t <= t_hi``."""
        return [(t, v) for t, v in self.points() if t_lo <= t <= t_hi]

    # -- windowed aggregates -----------------------------------------------------

    def window_stats(self, t_lo: float, t_hi: float = math.inf) -> dict[str, float]:
        """Aggregates over one window: count, extrema, mean, p50/p95, rate.

        ``rate`` is the first derivative over the window endpoints — the
        natural reading of a cumulative series (events/s, bytes/s, stalled
        seconds per second); for level series it is the net drift rate.
        """
        pts = self.window(t_lo, t_hi)
        if not pts:
            return {"n": 0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "first": 0.0, "last": 0.0,
                    "delta": 0.0, "rate": 0.0}
        values = sorted(v for _t, v in pts)
        n = len(values)
        t_first, v_first = pts[0]
        t_last, v_last = pts[-1]
        dt = t_last - t_first
        delta = v_last - v_first
        return {
            "n": float(n),
            "min": values[0],
            "max": values[-1],
            "mean": sum(values) / n,
            "p50": values[max(0, math.ceil(0.50 * n) - 1)],
            "p95": values[max(0, math.ceil(0.95 * n) - 1)],
            "first": v_first,
            "last": v_last,
            "delta": delta,
            "rate": delta / dt if dt > 0 else 0.0,
        }

    def slope(self, t_lo: float, t_hi: float = math.inf) -> float:
        """Least-squares trend (value units per second) over the window."""
        pts = self.window(t_lo, t_hi)
        if len(pts) < 2:
            return 0.0
        n = len(pts)
        mean_t = sum(t for t, _v in pts) / n
        mean_v = sum(v for _t, v in pts) / n
        num = sum((t - mean_t) * (v - mean_v) for t, v in pts)
        den = sum((t - mean_t) ** 2 for t, _v in pts)
        return num / den if den > 0 else 0.0

    def decimated(self, max_points: int = 16) -> list[tuple[float, float]]:
        """At most ``max_points`` evenly spaced retained samples (for tables)."""
        if max_points < 1:
            raise ConfigError(f"max_points must be >= 1, got {max_points}")
        pts = self.points()
        if len(pts) <= max_points:
            return pts
        stride = len(pts) / max_points
        picked = [pts[int(i * stride)] for i in range(max_points)]
        picked[-1] = pts[-1]  # always keep the newest sample
        return picked


class Timeline:
    """Periodic snapshots of every instrument into bounded ring series.

    Series keys: ``counter.<name>`` (cumulative), ``gauge.<name>`` (level,
    summed across tracks so multi-rank gauges read as totals) and
    ``hist.<name>.count`` / ``hist.<name>.total`` (cumulative).
    """

    def __init__(self, telemetry: "Telemetry", resolution: float = 0.05,
                 capacity: int = 256):
        if resolution <= 0:
            raise ConfigError(f"timeline resolution must be > 0, got {resolution}")
        self.telemetry = telemetry
        self.resolution = resolution
        self.capacity = capacity
        self.series: dict[str, TimeSeries] = {}
        self.samples_taken = 0
        self._last_sample = -math.inf

    def _series(self, key: str, kind: str) -> TimeSeries:
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = TimeSeries(key, kind, self.capacity)
        return series

    def get(self, key: str) -> TimeSeries | None:
        return self.series.get(key)

    def sample(self, now: float | None = None, force: bool = False) -> bool:
        """Snapshot all instruments; returns False when inside ``resolution``
        of the previous sample (unless forced)."""
        tel = self.telemetry
        if now is None:
            now = tel.now()
        # A tiny slack absorbs float drift of periodic callbacks.
        if not force and now - self._last_sample < self.resolution * (1 - 1e-9):
            return False
        self._last_sample = now
        self.samples_taken += 1
        for name, counter in tel.counters.items():
            self._series(f"counter.{name}", CUMULATIVE).append(now, counter.value)
        by_name: dict[str, float] = {}
        for gauge in tel.gauges.values():
            by_name[gauge.name] = by_name.get(gauge.name, 0.0) + gauge.value
        for name, total in by_name.items():
            self._series(f"gauge.{name}", LEVEL).append(now, total)
        for name, hist in tel.histograms.items():
            self._series(f"hist.{name}.count", CUMULATIVE).append(now, hist.count)
            self._series(f"hist.{name}.total", CUMULATIVE).append(now, hist.total)
        return True

    # -- presentation -------------------------------------------------------------

    def summary(self, window: float | None = None) -> dict[str, dict[str, float]]:
        """Per-series last/high-water plus rate over the trailing window."""
        out: dict[str, dict[str, float]] = {}
        for key in sorted(self.series):
            series = self.series[key]
            latest = series.latest()
            if latest is None:
                continue
            t_last, v_last = latest
            t_lo = t_last - window if window is not None else -math.inf
            stats = series.window_stats(t_lo)
            out[key] = {
                "last": v_last,
                "high_water": series.high_water,
                "rate": stats["rate"],
                "mean": stats["mean"],
                "p95": stats["p95"],
                "points": float(series.total_points),
            }
        return out

    def render_table(self, keys: Iterable[str] | None = None,
                     max_rows: int = 8) -> str:
        """Text table of decimated series values over time, one row per
        sample instant, one column per series."""
        from repro.util.tables import Table

        keys = [k for k in (keys or sorted(self.series)) if k in self.series]
        if not keys:
            return "(no timeline series recorded)"
        table = Table(["t_virtual_s"] + list(keys), title="Timeline (decimated)")
        columns = {k: dict(self.series[k].decimated(max_rows)) for k in keys}
        ticks = sorted({t for pts in columns.values() for t in pts})
        if len(ticks) > max_rows:
            stride = len(ticks) / max_rows
            ticks = [ticks[int(i * stride)] for i in range(max_rows - 1)] + [ticks[-1]]
        last_seen: dict[str, float] = {k: 0.0 for k in keys}
        for t in ticks:
            row: list[object] = [t]
            for k in keys:
                if t in columns[k]:
                    last_seen[k] = columns[k][t]
                row.append(last_seen[k])
            table.add_row(*row)
        return table.render()
