"""Discrete-event simulation kernel.

Processes are plain Python generators that ``yield`` *waitables*; the kernel
advances virtual time and resumes processes when their waitables fire.  This
is the execution substrate for the simulated MPI runtime: every simulated MPI
rank is one :class:`~repro.simt.process.Process`.

Quick example::

    from repro.simt import Kernel

    k = Kernel()

    def pinger(k):
        yield k.timeout(1.5)
        return "done at %.1f" % k.now

    p = k.spawn(pinger(k), name="pinger")
    k.run()
    assert k.now == 1.5 and p.value.startswith("done")
"""

from repro.simt.primitives import SimEvent, Timeout, AnyOf, AllOf, Interrupt
from repro.simt.process import Process
from repro.simt.kernel import Kernel
from repro.simt.resources import Resource, Store, Pipe

__all__ = [
    "Kernel",
    "Process",
    "SimEvent",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Resource",
    "Store",
    "Pipe",
]
