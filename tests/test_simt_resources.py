"""Resource, Store and Pipe semantics."""

import pytest

from repro.errors import SimulationError
from repro.simt import Pipe, Resource, Store


class TestResource:
    def test_capacity_validation(self, kernel):
        with pytest.raises(SimulationError):
            Resource(kernel, capacity=0)

    def test_acquire_release_fifo(self, kernel):
        res = Resource(kernel, capacity=1)
        order = []

        def worker(k, name, hold):
            yield res.acquire()
            order.append((name, k.now))
            yield k.timeout(hold)
            res.release()

        kernel.spawn(worker(kernel, "a", 2.0))
        kernel.spawn(worker(kernel, "b", 1.0))
        kernel.spawn(worker(kernel, "c", 1.0))
        kernel.run()
        assert order == [("a", 0.0), ("b", 2.0), ("c", 3.0)]

    def test_capacity_two_runs_concurrently(self, kernel):
        res = Resource(kernel, capacity=2)
        done = []

        def worker(k, name):
            yield res.acquire()
            yield k.timeout(1.0)
            res.release()
            done.append((name, k.now))

        for name in "abc":
            kernel.spawn(worker(kernel, name))
        kernel.run()
        assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0)]

    def test_release_idle_raises(self, kernel):
        res = Resource(kernel)
        with pytest.raises(SimulationError):
            res.release()

    def test_queue_length(self, kernel):
        res = Resource(kernel, capacity=1)

        def holder(k):
            yield res.acquire()
            yield k.timeout(5.0)
            res.release()

        def waiter(k):
            yield res.acquire()
            res.release()

        kernel.spawn(holder(kernel))
        kernel.spawn(waiter(kernel))
        kernel.run(until=1.0)
        assert res.queue_length == 1
        kernel.run()
        assert res.queue_length == 0


class TestStore:
    def test_put_get_fifo(self, kernel):
        store = Store(kernel)
        got = []

        def producer(k):
            for i in range(3):
                yield store.put(i)

        def consumer(k):
            for _ in range(3):
                value = yield store.get()
                got.append(value)

        kernel.spawn(producer(kernel))
        kernel.spawn(consumer(kernel))
        kernel.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self, kernel):
        store = Store(kernel)
        got = []

        def consumer(k):
            value = yield store.get()
            got.append((value, k.now))

        def producer(k):
            yield k.timeout(3.0)
            yield store.put("x")

        kernel.spawn(consumer(kernel))
        kernel.spawn(producer(kernel))
        kernel.run()
        assert got == [("x", 3.0)]

    def test_bounded_put_blocks(self, kernel):
        store = Store(kernel, capacity=1)
        events = []

        def producer(k):
            yield store.put(1)
            events.append(("put1", k.now))
            yield store.put(2)
            events.append(("put2", k.now))

        def consumer(k):
            yield k.timeout(4.0)
            value = yield store.get()
            events.append(("got", value, k.now))

        kernel.spawn(producer(kernel))
        kernel.spawn(consumer(kernel))
        kernel.run()
        assert ("put1", 0.0) in events
        assert ("put2", 4.0) in events

    def test_try_get(self, kernel):
        store = Store(kernel)
        ok, item = store.try_get()
        assert not ok and item is None
        store.put("v")
        kernel.run()
        ok, item = store.try_get()
        assert ok and item == "v"

    def test_capacity_validation(self, kernel):
        with pytest.raises(SimulationError):
            Store(kernel, capacity=0)

    def test_len(self, kernel):
        store = Store(kernel)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestPipe:
    def test_bandwidth_validation(self, kernel):
        with pytest.raises(SimulationError):
            Pipe(kernel, bandwidth=0)
        with pytest.raises(SimulationError):
            Pipe(kernel, bandwidth=10, latency=-1)

    def test_single_transfer_duration(self, kernel):
        pipe = Pipe(kernel, bandwidth=100.0, latency=0.25)

        def proc(k):
            yield pipe.transfer(50)
            return k.now

        p = kernel.spawn(proc(kernel))
        kernel.run()
        assert p.value == pytest.approx(0.75)  # 0.5 transfer + 0.25 latency

    def test_transfers_serialize(self, kernel):
        pipe = Pipe(kernel, bandwidth=100.0)
        times = []

        def sender(k):
            yield pipe.transfer(100)
            times.append(k.now)
            yield pipe.transfer(100)
            times.append(k.now)

        kernel.spawn(sender(kernel))
        kernel.run()
        assert times == [1.0, 2.0]

    def test_concurrent_transfers_share_bandwidth(self, kernel):
        pipe = Pipe(kernel, bandwidth=100.0)
        times = []

        def sender(k, name):
            yield pipe.transfer(100)
            times.append((name, k.now))

        kernel.spawn(sender(kernel, "a"))
        kernel.spawn(sender(kernel, "b"))
        kernel.run()
        # FIFO: a finishes at 1s, b at 2s — aggregate never beats bandwidth.
        assert times == [("a", 1.0), ("b", 2.0)]

    def test_commit_returns_absolute_time(self, kernel):
        pipe = Pipe(kernel, bandwidth=10.0, latency=0.5)
        assert pipe.commit(10) == pytest.approx(1.5)
        assert pipe.commit(10) == pytest.approx(2.5)

    def test_negative_transfer_rejected(self, kernel):
        pipe = Pipe(kernel, bandwidth=10.0)
        with pytest.raises(SimulationError):
            pipe.transfer(-1)

    def test_stats_accumulate(self, kernel):
        pipe = Pipe(kernel, bandwidth=10.0)

        def proc(k):
            yield pipe.transfer(10)
            yield pipe.transfer(20)

        kernel.spawn(proc(kernel))
        kernel.run()
        assert pipe.bytes_transferred == 30
        assert pipe.transfers == 2
        assert pipe.busy_time == pytest.approx(3.0)
        assert pipe.utilization() == pytest.approx(1.0)

    def test_idle_pipe_catches_up_with_now(self, kernel):
        pipe = Pipe(kernel, bandwidth=10.0)
        times = []

        def proc(k):
            yield pipe.transfer(10)  # done at 1.0
            yield k.timeout(10.0)  # idle gap
            yield pipe.transfer(10)  # starts fresh at 11.0
            times.append(k.now)

        kernel.spawn(proc(kernel))
        kernel.run()
        assert times == [12.0]
        assert pipe.backlog_seconds == 0.0

    def test_eta_has_no_side_effects(self, kernel):
        pipe = Pipe(kernel, bandwidth=10.0)
        eta1 = pipe.eta(10)
        eta2 = pipe.eta(10)
        assert eta1 == eta2 == pytest.approx(1.0)
        assert pipe.bytes_transferred == 0
