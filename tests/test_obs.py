"""Unified observability bus: registry, bus fan-out, sinks, CLI, wiring."""

import json
import socket
import threading
import time

import pytest

from repro.errors import ConfigError
from repro.obs import (
    ArchiveScan,
    FileSink,
    HEALTH_SCHEMA,
    METRICS_SCHEMA,
    ObservabilityBus,
    REGISTRY,
    RingSink,
    STEERING_SCHEMA,
    TELEMETRY_SCHEMA,
    TailServer,
    default_registry,
    iter_archive,
    iter_ndjson,
    make_record,
    parse_address,
    record_time,
)
from repro.obs.__main__ import main as obs_main

pytestmark = pytest.mark.obs


def _window(t1=1.0, **extra):
    return make_record(METRICS_SCHEMA, "window", t0=t1 - 0.5, t1=t1, **extra)


# -- registry -----------------------------------------------------------------------


class TestRegistry:
    def test_all_five_schemas_registered(self):
        names = REGISTRY.known()
        assert set(names) == {
            TELEMETRY_SCHEMA,
            "repro.hostprof/1",
            METRICS_SCHEMA,
            HEALTH_SCHEMA,
            STEERING_SCHEMA,
        }

    def test_legacy_constants_are_reexports(self):
        from repro.telemetry.export import TELEMETRY_SCHEMA as legacy_tel
        from repro.telemetry.hostprof import HOSTPROF_SCHEMA as legacy_host
        from repro.telemetry.stream_export import METRICS_SCHEMA as legacy_metrics
        from repro.telemetry.monitor import WINDOWED_KINDS, CLEARED_SUFFIX

        assert legacy_tel == TELEMETRY_SCHEMA
        assert legacy_host == "repro.hostprof/1"
        assert legacy_metrics == METRICS_SCHEMA
        for kind in WINDOWED_KINDS:
            assert kind in REGISTRY.kinds_for(HEALTH_SCHEMA)
            assert kind + CLEARED_SUFFIX in REGISTRY.kinds_for(HEALTH_SCHEMA)

    def test_unknown_schema_lists_known(self):
        with pytest.raises(ConfigError, match="repro.telemetry/1"):
            REGISTRY.get("repro.nonesuch/1")

    def test_make_record_key_order(self):
        record = make_record(METRICS_SCHEMA, "window", b=1, a=2)
        assert list(record) == ["schema", "kind", "b", "a"]

    def test_validate_rejects_wrong_shapes(self):
        with pytest.raises(ConfigError):
            REGISTRY.validate(["not", "a", "dict"])
        with pytest.raises(ConfigError):
            REGISTRY.validate({"kind": "window"})  # no schema
        with pytest.raises(ConfigError):
            REGISTRY.validate(make_record(METRICS_SCHEMA, "nonesuch"))

    def test_record_time_priority(self):
        assert record_time({"t_detect": 3.0, "t": 1.0}) == 3.0
        assert record_time({"t1": 2.0, "t0": 1.0}) == 2.0
        assert record_time({"note": "no clock"}) is None


# -- bus ----------------------------------------------------------------------------


class TestBus:
    def test_publish_counts_and_fanout(self):
        bus = ObservabilityBus()
        ring_a, ring_b = RingSink(8), RingSink(8)
        bus.add_sink(ring_a, name="all")
        bus.add_sink(ring_b, schemas=[HEALTH_SCHEMA], name="health-only")
        bus.publish(_window())
        bus.publish(make_record(HEALTH_SCHEMA, "stream_stall", t_detect=1.0))
        assert bus.published == 2
        assert bus.count(METRICS_SCHEMA) == 1
        assert bus.count(HEALTH_SCHEMA, "stream_stall") == 1
        assert len(ring_a) == 2 and len(ring_b) == 1

    def test_malformed_record_rejected_at_publish(self):
        bus = ObservabilityBus()
        sink = RingSink(8)
        bus.add_sink(sink)
        with pytest.raises(ConfigError):
            bus.publish({"schema": "repro.nonesuch/1", "kind": "x"})
        with pytest.raises(ConfigError):
            bus.publish(make_record(METRICS_SCHEMA, "not_a_kind"))
        assert bus.rejected == 2
        assert bus.published == 0
        assert len(sink) == 0  # nothing malformed reached any sink

    def test_sink_exception_counted_not_raised(self):
        class Exploding:
            def emit(self, record):
                raise RuntimeError("boom")

        bus = ObservabilityBus()
        bus.add_sink(Exploding(), name="bad")
        bus.publish(_window())
        (stats,) = [b.stats() for b in bus.bindings]
        assert stats["errors"] == 1 and stats["delivered"] == 0

    def test_subscribing_unknown_schema_fails(self):
        bus = ObservabilityBus()
        with pytest.raises(ConfigError):
            bus.add_sink(RingSink(8), schemas=["repro.nonesuch/1"])

    def test_close_idempotent(self, tmp_path):
        bus = ObservabilityBus()
        bus.add_sink(FileSink(str(tmp_path / "out.ndjson")))
        bus.close()
        bus.close()


# -- file sink ----------------------------------------------------------------------


class TestFileSink:
    def test_bytes_identical_to_legacy_writer(self, tmp_path):
        from repro.telemetry.stream_export import MetricsStreamWriter

        legacy_path = tmp_path / "legacy.ndjson"
        sink_path = tmp_path / "sink.ndjson"
        writer = MetricsStreamWriter(str(legacy_path))
        sink = FileSink(str(sink_path))
        payload = {"t0": 0.0, "t1": 0.5, "pe": 0.9}
        writer.on_window(dict(payload))
        sink.emit(make_record(METRICS_SCHEMA, "window", **payload))
        writer.close()
        sink.close()
        assert legacy_path.read_bytes() == sink_path.read_bytes()

    def test_emit_after_close_raises(self, tmp_path):
        sink = FileSink(str(tmp_path / "out.ndjson"))
        sink.close()
        with pytest.raises(ConfigError):
            sink.emit(_window())


# -- ring sink ----------------------------------------------------------------------


class TestRingSink:
    def test_overflow_drop_oldest_accounting(self):
        ring = RingSink(capacity=3)
        for i in range(5):
            assert ring.emit(_window(t1=float(i), seq=i))
        assert len(ring) == 3
        assert ring.accepted == 5
        assert ring.evicted == 2
        assert [r["seq"] for r in ring.records()] == [2, 3, 4]
        assert ring.stats() == {"capacity": 3, "retained": 3, "evicted": 2}

    def test_query_filters(self):
        ring = RingSink(capacity=8)
        ring.emit(_window(t1=1.0))
        ring.emit(make_record(HEALTH_SCHEMA, "stream_stall", t_detect=2.0))
        ring.emit(make_record(STEERING_SCHEMA, "decision", t=3.0))
        assert len(list(ring.query(schema=HEALTH_SCHEMA))) == 1
        assert len(list(ring.query(kind="window"))) == 1
        # --since is inclusive and excludes time-less records
        assert [r["schema"] for r in ring.query(since=2.0)] == [
            HEALTH_SCHEMA,
            STEERING_SCHEMA,
        ]
        ring.emit(make_record(TELEMETRY_SCHEMA, "counter", name="n", value=1))
        assert all(
            r["kind"] != "counter" for r in ring.query(since=0.0)
        ), "time-less record must not pass a since filter"

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            RingSink(capacity=0)


# -- tail server --------------------------------------------------------------------


def _connect(server: TailServer) -> socket.socket:
    family, sockaddr = parse_address(server.address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    sock.connect(sockaddr)
    return sock


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestTailServer:
    def test_live_client_receives_lines(self):
        server = TailServer("127.0.0.1:0")
        try:
            sock = _connect(server)
            assert _wait_until(lambda: server.stats()["clients_served"] == 1)
            records = [_window(t1=float(i)) for i in range(3)]
            for record in records:
                assert server.emit(record)
            fh = sock.makefile("rb")
            got = [json.loads(fh.readline()) for _ in records]
            assert got == records
            sock.close()
        finally:
            server.close()

    def test_no_clients_counts_delivered(self):
        server = TailServer("127.0.0.1:0")
        try:
            assert server.emit(_window())  # a file nobody reads, not a drop
        finally:
            server.close()

    def test_slow_client_drops_counted_publisher_unblocked(self):
        # Bound small enough that a couple of records overflow a client
        # that never reads.
        server = TailServer("127.0.0.1:0", max_pending_bytes=96)
        try:
            sock = _connect(server)
            assert _wait_until(lambda: server.stats()["clients_served"] == 1)
            t0 = time.monotonic()
            results = [
                server.emit(_window(t1=float(i), pad="x" * 64)) for i in range(50)
            ]
            elapsed = time.monotonic() - t0
            assert elapsed < 2.0, "publisher must never block on a slow client"
            assert not all(results), "overflowing client must surface drops"
            assert _wait_until(
                lambda: sum(c["dropped"] for c in server.stats()["clients"]) > 0
            )
            sock.close()
        finally:
            server.close()

    def test_unix_socket_roundtrip(self, tmp_path):
        path = str(tmp_path / "obs.sock")
        server = TailServer(path)
        try:
            assert server.address == path
            sock = _connect(server)
            assert _wait_until(lambda: server.stats()["clients_served"] == 1)
            record = make_record(HEALTH_SCHEMA, "backlog_growth", t_detect=1.5)
            server.emit(record)
            assert json.loads(sock.makefile("rb").readline()) == record
            sock.close()
        finally:
            server.close()
        assert not (tmp_path / "obs.sock").exists()

    def test_emit_after_close_raises(self):
        server = TailServer("127.0.0.1:0")
        server.close()
        with pytest.raises(ConfigError):
            server.emit(_window())

    def test_bad_address_rejected(self):
        with pytest.raises(ConfigError):
            parse_address("host:notaport")


# -- torn-tail NDJSON reading -------------------------------------------------------


class TestIterNdjson:
    def test_offsets_resume(self, tmp_path):
        path = tmp_path / "s.ndjson"
        records = [_window(t1=float(i)) for i in range(3)]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        pairs = list(iter_ndjson(path, tail=True))
        assert [r for _o, r in pairs] == records
        # Resume from the middle offset: only the later records re-read.
        offset = pairs[0][0]
        rest = list(iter_ndjson(path, tail=True, start=offset))
        assert [r for _o, r in rest] == records[1:]

    def test_tail_tolerates_one_trailing_partial(self, tmp_path):
        path = tmp_path / "s.ndjson"
        whole = json.dumps(_window(t1=1.0)) + "\n"
        path.write_text(whole + '{"schema": "repro.pop-m')  # torn mid-flush
        pairs = list(iter_ndjson(path, tail=True))
        assert len(pairs) == 1
        # The writer finishes the line: resuming picks the record up.
        path.write_text(whole + json.dumps(_window(t1=2.0)) + "\n")
        resumed = list(iter_ndjson(path, tail=True, start=pairs[0][0]))
        assert [r["t1"] for _o, r in resumed] == [2.0]

    def test_newline_terminated_garbage_raises_in_both_modes(self, tmp_path):
        path = tmp_path / "s.ndjson"
        path.write_text(json.dumps(_window()) + "\n" + "garbage\n")
        with pytest.raises(ConfigError):
            list(iter_ndjson(path, tail=True))
        with pytest.raises(ConfigError):
            list(iter_ndjson(path))

    def test_non_tail_mode_fails_on_torn_tail(self, tmp_path):
        path = tmp_path / "s.ndjson"
        path.write_text(json.dumps(_window()))  # no trailing newline
        with pytest.raises(ConfigError, match="tail=True"):
            list(iter_ndjson(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "s.ndjson"
        path.write_text("")
        assert list(iter_ndjson(path)) == []
        assert list(iter_ndjson(path, tail=True)) == []


class TestMetricsStreamTail:
    """The satellite fix: iter_metrics_stream grows a resumable tail mode."""

    def _write(self, path, records):
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )

    def test_default_mode_unchanged(self, tmp_path):
        from repro.telemetry.stream_export import (
            iter_metrics_stream,
            read_metrics_stream,
        )

        path = tmp_path / "s.ndjson"
        records = [_window(t1=1.0), _window(t1=2.0)]
        self._write(path, records)
        assert list(iter_metrics_stream(str(path))) == records
        assert read_metrics_stream(str(path)) == records

    def test_tail_mode_resumes_across_partial(self, tmp_path):
        from repro.telemetry.stream_export import iter_metrics_stream

        path = tmp_path / "s.ndjson"
        first = json.dumps(_window(t1=1.0)) + "\n"
        path.write_text(first + json.dumps(_window(t1=2.0))[:10])
        pairs = list(iter_metrics_stream(str(path), tail=True))
        assert len(pairs) == 1 and pairs[0][1]["t1"] == 1.0
        path.write_text(first + json.dumps(_window(t1=2.0)) + "\n")
        resumed = list(iter_metrics_stream(str(path), tail=True, start=pairs[0][0]))
        assert [r["t1"] for _o, r in resumed] == [2.0]

    def test_tail_mode_still_validates_schema(self, tmp_path):
        from repro.telemetry.stream_export import iter_metrics_stream

        path = tmp_path / "s.ndjson"
        path.write_text(json.dumps({"schema": "other/1", "kind": "window"}) + "\n")
        with pytest.raises(ConfigError):
            list(iter_metrics_stream(str(path), tail=True))

    def test_mid_file_corruption_still_loud(self, tmp_path):
        from repro.telemetry.stream_export import iter_metrics_stream

        path = tmp_path / "s.ndjson"
        path.write_text("not json\n" + json.dumps(_window()) + "\n")
        with pytest.raises(ConfigError):
            list(iter_metrics_stream(str(path), tail=True))


# -- archive query + CLI ------------------------------------------------------------


def _archive(tmp_path):
    run = tmp_path / "run1"
    run.mkdir()
    records = [
        _window(t1=1.0),
        _window(t1=2.0),
        make_record(HEALTH_SCHEMA, "stream_stall", t_detect=2.0),
        make_record(STEERING_SCHEMA, "decision", t=2.5),
    ]
    (run / "unified.ndjson").write_text(
        "".join(json.dumps(r) + "\n" for r in records)
    )
    (run / "foreign.jsonl").write_text(
        json.dumps({"schema": "acme.metrics/9", "kind": "blob"}) + "\n"
    )
    return run, records


class TestArchive:
    def test_iter_archive_filters_and_counts_unknown(self, tmp_path):
        run, records = _archive(tmp_path)
        scan = ArchiveScan()
        got = list(iter_archive([run], schema=METRICS_SCHEMA, scan=scan))
        assert got == records[:2]
        assert scan.unknown_schemas == {"acme.metrics/9": 1}
        assert scan.files_scanned == 2

    def test_since_boundary_inclusive(self, tmp_path):
        run, _records = _archive(tmp_path)
        got = list(iter_archive([run], since=2.0))
        assert {record_time(r) for r in got} == {2.0, 2.5}

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            list(iter_archive([tmp_path / "nope"]))


class TestCli:
    def test_query_counts(self, tmp_path, capsys):
        run, _ = _archive(tmp_path)
        assert obs_main(["query", str(run), "--schema", METRICS_SCHEMA, "--count"]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_query_since_boundary(self, tmp_path, capsys):
        run, _ = _archive(tmp_path)
        assert obs_main(["query", str(run), "--since", "2.0"]) == 0
        out = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert {record_time(r) for r in out} == {2.0, 2.5}

    def test_query_reports_foreign_schema_on_stderr(self, tmp_path, capsys):
        run, _ = _archive(tmp_path)
        obs_main(["query", str(run)])
        assert "acme.metrics/9" in capsys.readouterr().err

    def test_tail_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.ndjson"
        path.write_text("")
        assert obs_main(["tail", str(path)]) == 0
        assert capsys.readouterr().out == ""

    def test_tail_file_filters(self, tmp_path, capsys):
        run, records = _archive(tmp_path)
        assert (
            obs_main(
                ["tail", str(run / "unified.ndjson"), "--kind", "decision"]
            )
            == 0
        )
        out = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert out == [records[3]]

    def test_tail_file_skips_foreign_schema_unless_strict(self, tmp_path, capsys):
        run, _ = _archive(tmp_path)
        assert obs_main(["tail", str(run / "foreign.jsonl")]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "acme.metrics/9" in captured.err
        assert obs_main(["tail", str(run / "foreign.jsonl"), "--strict"]) == 1

    def test_tail_socket(self, tmp_path, capsys):
        server = TailServer("127.0.0.1:0")
        record = make_record(HEALTH_SCHEMA, "stream_stall", t_detect=1.0)

        def feed():
            _wait_until(lambda: server.stats()["clients_served"] == 1)
            server.emit(record)
            _wait_until(
                lambda: sum(c["sent"] for c in server.stats()["clients"]) == 1
            )
            server.close()  # EOF ends the client tail

        feeder = threading.Thread(target=feed)
        feeder.start()
        try:
            assert obs_main(["tail", server.address, "--schema", HEALTH_SCHEMA]) == 0
        finally:
            feeder.join()
            server.close()
        out = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert out == [record]

    def test_summary_table(self, tmp_path, capsys):
        run, _ = _archive(tmp_path)
        assert obs_main(["summary", str(run)]) == 0
        out = capsys.readouterr().out
        assert METRICS_SCHEMA in out and "window" in out

    def test_schemas_lists_registry(self, capsys):
        assert obs_main(["schemas"]) == 0
        out = capsys.readouterr().out
        for name in default_registry().known():
            assert name in out

    def test_error_exit_code(self, tmp_path, capsys):
        assert obs_main(["query", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err


# -- session wiring -----------------------------------------------------------------


class TestSessionWiring:
    @pytest.fixture(scope="class")
    def session_pair(self, tmp_path_factory):
        from repro.apps.nas import SP
        from repro.core.session import CouplingSession
        from repro.telemetry import Telemetry
        from repro.telemetry.popmetrics import PopConfig

        tmp = tmp_path_factory.mktemp("obs_session")

        def build(stream=None):
            session = CouplingSession(telemetry=Telemetry(), seed=3)
            session.add_application(SP(16, "C", iterations=2), name="sp")
            session.set_analyzer(ratio=4.0)
            session.enable_monitor()
            session.enable_pop_metrics(PopConfig(window=0.5), stream=stream)
            session.enable_steering()
            return session

        off = build(stream=str(tmp / "pop_off.ndjson"))
        r_off = off.run()
        on = build(stream=str(tmp / "pop.ndjson"))
        on.enable_observability(str(tmp / "unified.ndjson"))
        r_on = on.run()
        return tmp, r_off, on, r_on

    def test_bus_run_bit_identical(self, session_pair):
        _tmp, r_off, _on, r_on = session_pair
        assert r_off.apps["sp"].walltime == r_on.apps["sp"].walltime
        assert r_off.analyzer_walltime == r_on.analyzer_walltime

    def test_pop_stream_byte_identical_through_bus(self, session_pair):
        tmp, _r_off, _on, _r_on = session_pair
        legacy = (tmp / "pop.ndjson").read_bytes()
        bus_lines = b"".join(
            line
            for line in (tmp / "unified.ndjson").read_bytes().splitlines(keepends=True)
            if json.loads(line).get("schema") == METRICS_SCHEMA
        )
        assert bus_lines == legacy

    def test_result_and_report_carry_summary(self, session_pair):
        _tmp, _r_off, _on, r_on = session_pair
        assert r_on.obs is not None
        assert r_on.obs["published"] > 0 and r_on.obs["rejected"] == 0
        assert "## Observability" in r_on.report.render()

    def test_ring_queryable_after_run(self, session_pair):
        _tmp, _r_off, on, r_on = session_pair
        ring = on.obs_ring
        assert ring is not None and len(ring) > 0
        assert len(list(ring.query(schema=TELEMETRY_SCHEMA))) == sum(
            r_on.obs["schemas"][TELEMETRY_SCHEMA].values()
        )

    def test_double_enable_rejected(self, session_pair):
        _tmp, _r_off, on, _r_on = session_pair
        with pytest.raises(ConfigError):
            on.enable_observability()


# -- bench compare schema warning ---------------------------------------------------


class TestCompareSchemaWarning:
    def test_unknown_baseline_schema_warns_not_fails(self):
        from repro.bench.compare import compare_bench

        base = {
            "experiment": "obs",
            "columns": ["schema", "bus_records"],
            "rows": [["repro.telemetry/1", 3]],
            "bus": {"schemas": {"repro.retired-plane/1": {"x": 1}}},
            "records": [{"schema": "repro.retired-plane/1", "kind": "x"}],
        }
        cand = {
            "experiment": "obs",
            "columns": ["schema", "bus_records"],
            "rows": [["repro.telemetry/1", 3]],
        }
        cmp = compare_bench(base, cand)
        assert cmp.ok
        assert any("repro.retired-plane/1" in w for w in cmp.warnings)

    def test_known_schemas_no_warning(self):
        from repro.bench.compare import compare_bench

        base = {
            "experiment": "obs",
            "columns": ["schema"],
            "rows": [["repro.telemetry/1"]],
            "bus": {"schemas": {TELEMETRY_SCHEMA: {"span": 1}}},
        }
        cmp = compare_bench(base, dict(base))
        assert cmp.ok and not any("schema tag" in w for w in cmp.warnings)
