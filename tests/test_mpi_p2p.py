"""Point-to-point semantics: matching, wildcards, ordering, rendezvous."""

import pytest

from repro.errors import DeadlockError
from repro.mpi import ANY_SOURCE, ANY_TAG, MPMDLauncher
from repro.mpi.costmodel import CostModel


def _single(machine, main, nprocs, **kwargs):
    launcher = MPMDLauncher(machine=machine)
    launcher.add_program("t", nprocs=nprocs, main=main, **kwargs)
    return launcher.run()


def test_blocking_send_recv_payload(machine):
    got = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from comm.send(1, nbytes=128, tag=9, payload={"k": 1})
        else:
            status = yield from comm.recv(source=0, tag=9)
            got.append(status)
        yield from mpi.finalize()

    _single(machine, main, 2)
    assert got[0].source == 0
    assert got[0].tag == 9
    assert got[0].nbytes == 128
    assert got[0].payload == {"k": 1}


def test_any_source_any_tag(machine):
    got = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 2:
            for _ in range(2):
                status = yield from comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                got.append((status.source, status.tag))
        else:
            yield from comm.send(2, nbytes=8, tag=comm.rank + 10)
        yield from mpi.finalize()

    _single(machine, main, 3)
    assert sorted(got) == [(0, 10), (1, 11)]


def test_tag_selectivity(machine):
    order = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from comm.send(1, nbytes=8, tag=1, payload="first")
            yield from comm.send(1, nbytes=8, tag=2, payload="second")
        else:
            st2 = yield from comm.recv(source=0, tag=2)
            st1 = yield from comm.recv(source=0, tag=1)
            order.extend([st2.payload, st1.payload])
        yield from mpi.finalize()

    _single(machine, main, 2)
    assert order == ["second", "first"]


def test_non_overtaking_same_tag(machine):
    got = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 0:
            for i in range(5):
                yield from comm.send(1, nbytes=8, tag=7, payload=i)
        else:
            for _ in range(5):
                status = yield from comm.recv(source=0, tag=7)
                got.append(status.payload)
        yield from mpi.finalize()

    _single(machine, main, 2)
    assert got == [0, 1, 2, 3, 4]


def test_unmatched_recv_deadlocks(machine):
    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 1:
            yield from comm.recv(source=0, tag=1)  # never sent
        yield from mpi.finalize()

    with pytest.raises(DeadlockError):
        _single(machine, main, 2)


def test_self_send(machine):
    got = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        req = yield from comm.isend(comm.rank, nbytes=64, tag=3, payload="me")
        status = yield from comm.recv(source=comm.rank, tag=3)
        yield from mpi.wait(req)
        got.append(status.payload)
        yield from mpi.finalize()

    _single(machine, main, 1)
    assert got == ["me"]


def test_rendezvous_send_waits_for_receiver(machine):
    """A blocking send above the eager threshold completes only at match."""
    cost = CostModel(eager_threshold=1024)
    times = {}

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1_000_000, tag=1)
            times["send_done"] = mpi.now
        else:
            yield from mpi.compute(0.5)  # receiver is late
            yield from comm.recv(source=0, tag=1)
        yield from mpi.finalize()

    launcher = MPMDLauncher(machine=machine, cost=cost)
    launcher.add_program("t", nprocs=2, main=main)
    launcher.run()
    assert times["send_done"] >= 0.5


def test_eager_send_completes_without_receiver(machine):
    cost = CostModel(eager_threshold=1024 * 1024)
    times = {}

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1000, tag=1)
            times["send_done"] = mpi.now
        else:
            yield from mpi.compute(0.5)
            yield from comm.recv(source=0, tag=1)
        yield from mpi.finalize()

    launcher = MPMDLauncher(machine=machine, cost=cost)
    launcher.add_program("t", nprocs=2, main=main)
    launcher.run()
    assert times["send_done"] < 0.1


def test_sendrecv_exchange(machine):
    got = {}

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        partner = 1 - comm.rank
        status = yield from comm.sendrecv(
            partner, send_nbytes=256, source=partner, tag=5, payload=comm.rank
        )
        got[comm.rank] = status.payload
        yield from mpi.finalize()

    _single(machine, main, 2)
    assert got == {0: 1, 1: 0}


def test_iprobe(machine):
    observed = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from comm.send(1, nbytes=32, tag=4)
        else:
            # Poll until the message shows up.
            while True:
                status = yield from comm.iprobe(source=0, tag=4)
                if status is not None:
                    observed.append(status.nbytes)
                    break
                yield from mpi.compute(1e-6)
            yield from comm.recv(source=0, tag=4)
        yield from mpi.finalize()

    _single(machine, main, 2)
    assert observed == [32]


def test_message_latency_positive(machine):
    spans = []

    def main(mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1, tag=0)
        else:
            t0 = mpi.now
            yield from comm.recv(source=0, tag=0)
            spans.append(mpi.now - t0)
        yield from mpi.finalize()

    _single(machine, main, 2)
    assert spans[0] > 0


def test_bigger_messages_take_longer(machine):
    durations = {}

    def main(mpi, nbytes, key):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from comm.send(1, nbytes=nbytes, tag=0)
        else:
            t0 = mpi.now
            yield from comm.recv(source=0, tag=0)
            durations[key] = mpi.now - t0
        yield from mpi.finalize()

    _single(machine, main, 2, nbytes=1_000, key="small")
    _single(machine, main, 2, nbytes=10_000_000, key="big")
    assert durations["big"] > durations["small"] * 10
