"""Command-line consumer of the unified observability plane.

Usage::

    python -m repro.obs tail PATH|HOST:PORT [--schema S] [--kind K]
                        [--since T] [--follow] [--max N] [--strict]
    python -m repro.obs query PATH_OR_DIR... [--schema S] [--kind K]
                        [--since T] [--limit N] [--count]
    python -m repro.obs summary PATH_OR_DIR...
    python -m repro.obs schemas

``tail`` follows one live stream — an NDJSON file another process is
flushing (torn trailing lines are tolerated and resumed, mid-file
corruption fails loudly) or a :class:`~repro.obs.sinks.TailServer`
address (``HOST:PORT`` or a Unix-socket path) — printing matching records
one JSON object per line.  Without ``--follow`` a file tail stops at the
current end; with it, the reader polls for growth until ``--max`` records
arrived or interrupted.

``query`` filters archived run directories across all five schemas;
``summary`` prints per-schema/kind record counts; ``schemas`` lists the
registry.  All filters share one predicate: ``--schema``/``--kind`` match
exactly, ``--since`` keeps records stamped at or after the bound (records
without a timestamp never pass a ``--since`` filter).
"""

from __future__ import annotations

import argparse
import json
import socket as socket_module
import sys
import time
from pathlib import Path
from typing import Any

from repro.errors import ConfigError
from repro.obs.archive import ArchiveScan, iter_archive, iter_ndjson, match_record
from repro.obs.registry import REGISTRY, SchemaRegistry
from repro.obs.sinks import parse_address

#: polling cadence of ``tail --follow`` on a file, seconds
FOLLOW_POLL_S = 0.1


def _filter_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--schema", help="keep only this schema tag")
    parser.add_argument("--kind", help="keep only this record kind")
    parser.add_argument(
        "--since",
        type=float,
        help="keep records stamped at or after this virtual time (seconds); "
        "records without a timestamp are excluded",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Tail, query and summarize the unified observability plane.",
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="command")

    tail = sub.add_parser("tail", help="follow a live NDJSON file or tail server")
    tail.add_argument("source", help="NDJSON path, HOST:PORT, or Unix-socket path")
    _filter_flags(tail)
    tail.add_argument(
        "--follow",
        action="store_true",
        help="keep polling a file for growth instead of stopping at EOF",
    )
    tail.add_argument(
        "--max",
        type=int,
        default=None,
        metavar="N",
        help="stop after printing N matching records",
    )
    tail.add_argument(
        "--strict",
        action="store_true",
        help="fail on records with an unregistered schema instead of "
        "skipping and counting them",
    )

    query = sub.add_parser("query", help="filter archived run directories")
    query.add_argument("roots", nargs="+", help="record files or run directories")
    _filter_flags(query)
    query.add_argument(
        "--limit", type=int, default=None, metavar="N", help="print at most N records"
    )
    query.add_argument(
        "--count",
        action="store_true",
        help="print only the number of matching records",
    )

    summary = sub.add_parser("summary", help="per-schema/kind record counts")
    summary.add_argument("roots", nargs="+", help="record files or run directories")

    sub.add_parser("schemas", help="list the registered schemas and their kinds")
    return parser


def _emit(record: dict[str, Any]) -> None:
    sys.stdout.write(json.dumps(record))
    sys.stdout.write("\n")
    sys.stdout.flush()


# -- tail ---------------------------------------------------------------------------


def _tail_file(args: argparse.Namespace, registry: SchemaRegistry) -> int:
    path = Path(args.source)
    if not path.is_file():
        raise ConfigError(f"no such file: {path}")
    printed = 0
    skipped: dict[str, int] = {}
    offset = 0
    while True:
        for next_offset, record in iter_ndjson(path, tail=True, start=offset):
            offset = next_offset
            tag = record.get("schema") if isinstance(record, dict) else None
            if not isinstance(tag, str) or tag not in registry:
                label = tag if isinstance(tag, str) else "<missing>"
                if args.strict:
                    raise ConfigError(
                        f"{path}: record with unregistered schema {label!r} "
                        "(drop --strict to skip foreign records)"
                    )
                skipped[label] = skipped.get(label, 0) + 1
                continue
            if not match_record(
                record, schema=args.schema, kind=args.kind, since=args.since
            ):
                continue
            _emit(record)
            printed += 1
            if args.max is not None and printed >= args.max:
                break
        if not args.follow or (args.max is not None and printed >= args.max):
            break
        try:
            time.sleep(FOLLOW_POLL_S)
        except KeyboardInterrupt:
            break
    for label, n in sorted(skipped.items()):
        print(f"[tail: skipped {n} record(s) of unknown schema {label!r}]",
              file=sys.stderr)
    return 0


def _tail_socket(args: argparse.Namespace, registry: SchemaRegistry) -> int:
    family, sockaddr = parse_address(args.source)
    sock = socket_module.socket(family, socket_module.SOCK_STREAM)
    sock.connect(sockaddr)
    printed = 0
    skipped: dict[str, int] = {}
    try:
        with sock.makefile("rb") as fh:
            for raw in fh:
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ConfigError(f"{args.source}: not valid JSON: {exc}") from exc
                tag = record.get("schema") if isinstance(record, dict) else None
                if not isinstance(tag, str) or tag not in registry:
                    label = tag if isinstance(tag, str) else "<missing>"
                    if args.strict:
                        raise ConfigError(
                            f"{args.source}: record with unregistered schema {label!r}"
                        )
                    skipped[label] = skipped.get(label, 0) + 1
                    continue
                if not match_record(
                    record, schema=args.schema, kind=args.kind, since=args.since
                ):
                    continue
                _emit(record)
                printed += 1
                if args.max is not None and printed >= args.max:
                    break
    except KeyboardInterrupt:
        pass
    finally:
        sock.close()
    for label, n in sorted(skipped.items()):
        print(f"[tail: skipped {n} record(s) of unknown schema {label!r}]",
              file=sys.stderr)
    return 0


def _tail_main(args: argparse.Namespace, registry: SchemaRegistry) -> int:
    # A plain existing file is a file tail; anything else must parse as a
    # socket address (HOST:PORT, or the path of a live Unix socket).
    if Path(args.source).is_file():
        return _tail_file(args, registry)
    return _tail_socket(args, registry)


# -- query / summary ----------------------------------------------------------------


def _query_main(args: argparse.Namespace, registry: SchemaRegistry) -> int:
    scan = ArchiveScan()
    printed = 0
    for record in iter_archive(
        args.roots,
        schema=args.schema,
        kind=args.kind,
        since=args.since,
        registry=registry,
        scan=scan,
    ):
        if not args.count:
            if args.limit is not None and printed >= args.limit:
                break
            _emit(record)
        printed += 1
    if args.count:
        print(printed)
    _report_scan(scan)
    return 0


def _summary_main(args: argparse.Namespace, registry: SchemaRegistry) -> int:
    from repro.util.tables import Table

    scan = ArchiveScan()
    counts: dict[tuple[str, str], int] = {}
    for record in iter_archive(args.roots, registry=registry, scan=scan):
        key = (record["schema"], record["kind"])
        counts[key] = counts.get(key, 0) + 1
    table = Table(
        ["schema", "kind", "records"],
        title=f"Observability archive ({scan.files_scanned} file(s), "
        f"{scan.records_read} record(s))",
    )
    for (schema, kind), n in sorted(counts.items()):
        table.add_row(schema, kind, n)
    print(table.render())
    _report_scan(scan)
    return 0


def _report_scan(scan: ArchiveScan) -> None:
    for label, n in sorted(scan.unknown_schemas.items()):
        print(f"[skipped {n} record(s) of unknown schema {label!r}]", file=sys.stderr)
    for path in scan.files_skipped:
        print(f"[skipped non-record file {path}]", file=sys.stderr)


def _schemas_main(registry: SchemaRegistry) -> int:
    from repro.util.tables import Table

    table = Table(["schema", "kinds", "description"], title="Registered schemas")
    for name in registry.known():
        spec = registry.get(name)
        table.add_row(name, ", ".join(sorted(spec.kinds)), spec.description)
    print(table.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    registry = REGISTRY
    try:
        if args.command == "tail":
            return _tail_main(args, registry)
        if args.command == "query":
            return _query_main(args, registry)
        if args.command == "summary":
            return _summary_main(args, registry)
        return _schemas_main(registry)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # | head
        return 0


if __name__ == "__main__":
    sys.exit(main())
