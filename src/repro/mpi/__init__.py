"""Simulated MPI runtime.

A deterministic MPI-like runtime executing on the discrete-event kernel:
every rank is a coroutine process, point-to-point messages move through the
flow-level network model with correct tag/source matching semantics, and
collectives are synchronizing operations with standard log-tree cost models.
Programs are launched MPMD-style — exactly the substrate the paper's VMPI
layer needs.

Application code is written against :class:`~repro.mpi.world.ProgramAPI`
(the per-rank handle) and :class:`~repro.mpi.communicator.Comm`::

    def main(mpi):
        comm = mpi.comm_world
        if comm.rank == 0:
            yield from comm.send(1, nbytes=1024, tag=7)
        elif comm.rank == 1:
            status = yield from comm.recv(source=0, tag=7)
        yield from comm.barrier()

    launcher = MPMDLauncher(machine=TERA100)
    launcher.add_program("hello", nprocs=2, main=main)
    world = launcher.launch()
    world.run()
"""

from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, BYTE, DOUBLE, INT
from repro.mpi.status import Status
from repro.mpi.request import Request
from repro.mpi.communicator import Comm
from repro.mpi.world import World, ProgramAPI
from repro.mpi.launcher import MPMDLauncher, ProgramSpec
from repro.mpi.pmpi import PMPIStack, CallRecord, Interceptor

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BYTE",
    "INT",
    "DOUBLE",
    "Status",
    "Request",
    "Comm",
    "World",
    "ProgramAPI",
    "MPMDLauncher",
    "ProgramSpec",
    "PMPIStack",
    "CallRecord",
    "Interceptor",
]
