"""Analyzer engine wiring, report generation, session integration."""

import pytest

from repro.errors import ConfigError
from repro.analysis import AnalysisConfig
from repro.analysis.engine import AnalyzerEngine
from repro.analysis.report import ApplicationReport, ProfileReport
from repro.instrument.packer import EventPackBuilder
from repro.mpi.pmpi import CallRecord


def _pack(app_id=0, rank=0, n=4, name="MPI_Send"):
    pb = EventPackBuilder(app_id=app_id, rank=rank)
    for i in range(n):
        pb.add(
            CallRecord(
                name, float(i), float(i) + 0.1, 0, rank, 4, peer=(rank + 1) % 4,
                tag=0, nbytes=100,
            )
        )
    return pb.emit()


class TestAnalysisConfig:
    def test_defaults(self):
        cfg = AnalysisConfig()
        assert set(cfg.modules) == {"profile", "topology", "density", "waitstate"}

    def test_cpu_cost_linear(self):
        cfg = AnalysisConfig(per_byte_cpu=1e-9, per_pack_cpu=1e-6)
        assert cfg.cpu_cost(1000) == pytest.approx(2e-6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            AnalysisConfig(per_byte_cpu=-1)
        with pytest.raises(ConfigError):
            AnalysisConfig(modules=("profile", "magic"))
        with pytest.raises(ConfigError):
            AnalysisConfig(modules=())


class TestAnalyzerEngine:
    def test_pipeline_feeds_all_modules(self):
        engine = AnalyzerEngine([("app", 4)], AnalysisConfig())
        engine.ingest(_pack(app_id=0, rank=1))
        states = engine.states["app"]
        assert states["profile"].events_total == 4
        assert (1, 2) in states["topology"].cells
        assert states["density"].map_for("MPI_Send", "hits")[1] == 4

    def test_multi_app_levels_separate(self):
        engine = AnalyzerEngine([("a", 4), ("b", 4)], AnalysisConfig())
        engine.ingest(_pack(app_id=0, rank=0))
        engine.ingest(_pack(app_id=1, rank=0, n=7))
        assert engine.states["a"]["profile"].events_total == 4
        assert engine.states["b"]["profile"].events_total == 7

    def test_merge_states(self):
        left = AnalyzerEngine([("app", 4)], AnalysisConfig())
        right = AnalyzerEngine([("app", 4)], AnalysisConfig())
        left.ingest(_pack(rank=0))
        right.ingest(_pack(rank=2))
        left.merge_states(right.states)
        assert left.states["app"]["profile"].events_total == 8

    def test_merge_unknown_level_rejected(self):
        left = AnalyzerEngine([("app", 4)], AnalysisConfig())
        right = AnalyzerEngine([("other", 4)], AnalysisConfig())
        with pytest.raises(ConfigError):
            left.merge_states(right.states)

    def test_report_chapters(self):
        engine = AnalyzerEngine([("a", 4), ("b", 2)], AnalysisConfig())
        engine.ingest(_pack(app_id=0))
        report = engine.build_report()
        assert isinstance(report, ProfileReport)
        assert "a" in report and "b" in report
        with pytest.raises(KeyError):
            report.chapter("zzz")

    def test_module_subset(self):
        engine = AnalyzerEngine([("app", 4)], AnalysisConfig(modules=("profile",)))
        engine.ingest(_pack())
        assert set(engine.states["app"]) == {"profile"}
        report = engine.build_report()
        chapter = report.chapter("app")
        assert chapter.topology is None and chapter.profile is not None

    def test_needs_apps(self):
        with pytest.raises(ConfigError):
            AnalyzerEngine([], AnalysisConfig())


class TestReportRendering:
    def _full_report(self):
        engine = AnalyzerEngine([("app", 4)], AnalysisConfig())
        for rank in range(4):
            engine.ingest(_pack(rank=rank))
            engine.ingest(_pack(rank=rank, name="MPI_Waitall", n=2))
        return engine.build_report()

    def test_render_contains_sections(self):
        text = self._full_report().render()
        assert "# Online profiling report" in text
        assert "## Application: app (4 ranks)" in text
        assert "### MPI profile" in text
        assert "### Point-to-point topology" in text
        assert "### Density maps" in text
        assert "### Wait-state analysis" in text

    def test_verbose_render_includes_grids_and_dot(self):
        text = self._full_report().render(verbosity=2)
        assert "digraph" in text
        assert "MPI_Send" in text

    def test_empty_chapter_renders(self):
        report = ProfileReport(chapters=[ApplicationReport(app="x", app_size=1)])
        assert "## Application: x" in report.render()


class TestSessionIntegration:
    def test_multi_application_single_report(self, big_machine):
        """The paper's headline: concurrent apps, one report, per-app chapters."""
        from repro.apps.nas import CG, EP
        from repro.core.session import CouplingSession

        session = CouplingSession(machine=big_machine, seed=3)
        session.add_application(CG(8, "C", iterations=4))
        session.add_application(EP(4, "C"))
        session.set_analyzer(nprocs=4)
        result = session.run()
        report = result.report
        assert "CG.C" in report and "EP.C" in report
        cg_profile = report.chapter("CG.C").profile
        ep_profile = report.chapter("EP.C").profile
        assert cg_profile.app_size == 8
        assert ep_profile.app_size == 4
        # Per-app event streams were not mixed up.
        assert result.app("CG.C").events == cg_profile.events_total
        assert result.app("EP.C").events == ep_profile.events_total

    def test_analyzer_sizing_rules(self, big_machine):
        from repro.apps.nas import EP
        from repro.core.session import CouplingSession

        session = CouplingSession(machine=big_machine)
        session.add_application(EP(32, "C"))
        assert session.set_analyzer(ratio=10) == 3
        assert session.set_analyzer(ratio=64) == 1  # floor of one reader
        assert session.set_analyzer(nprocs=5) == 5
        with pytest.raises(ConfigError):
            session.set_analyzer()
        with pytest.raises(ConfigError):
            session.set_analyzer(ratio=1, nprocs=2)
        with pytest.raises(ConfigError):
            session.set_analyzer(ratio=-1)

    def test_reserved_analyzer_name(self, big_machine):
        from repro.apps.nas import EP
        from repro.core.session import CouplingSession

        session = CouplingSession(machine=big_machine)
        with pytest.raises(ConfigError):
            session.add_application(EP(4, "C"), name="Analyzer")

    def test_analyzer_stats_exposed(self, big_machine):
        from repro.apps.nas import EP
        from repro.core.session import CouplingSession

        session = CouplingSession(machine=big_machine)
        session.add_application(EP(4, "C"))
        session.set_analyzer(ratio=2.0)
        result = session.run()
        assert result.analyzer_stats["packs"] >= 4
        assert result.analyzer_stats["board"]["jobs_executed"] > 0
