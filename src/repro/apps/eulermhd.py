"""EulerMHD skeleton: high-order ideal MHD on a 2D Cartesian mesh.

The paper's representative C++ application (Wolff et al. [20]) solves Euler
ideal magneto-hydrodynamics at high order on a 2D Cartesian mesh.  The
skeleton reproduces its communication shape: a px x py domain decomposition
with four-neighbour halo exchanges of ``nvars`` conserved variables per time
step (wide halos — high-order stencils), one ``MPI_Allreduce`` for the CFL
time-step, and periodic checkpoint writes through POSIX calls (which the
density module also maps).

The grid topology is what the paper's Figure 17(c) shows for EulerMHD on
2048 cores.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.apps.base import AppKernel, grid_2d


class EulerMHD(AppKernel):
    name = "EulerMHD"

    def __init__(
        self,
        nprocs: int,
        grid: int = 4096,
        nvars: int = 8,
        halo_width: int = 3,
        flops_per_cell: float = 900.0,
        iterations: int = 10,
        checkpoint_every: int = 0,
    ):
        if grid <= 0 or nvars <= 0 or halo_width <= 0:
            raise ConfigError("EulerMHD: grid, nvars and halo_width must be > 0")
        if flops_per_cell <= 0:
            raise ConfigError("EulerMHD: flops_per_cell must be > 0")
        if checkpoint_every < 0:
            raise ConfigError("EulerMHD: checkpoint_every must be >= 0")
        self.grid = grid
        self.nvars = nvars
        self.halo_width = halo_width
        self.flops_per_cell = flops_per_cell
        self.checkpoint_every = checkpoint_every
        super().__init__(nprocs, iterations)

    @property
    def label(self) -> str:
        return self.name

    def layout(self) -> tuple[int, int]:
        return grid_2d(self.nprocs)

    def halo_bytes(self, edge_cells: float) -> int:
        return max(64, int(edge_cells * self.halo_width * self.nvars * 8))

    def step_compute_seconds(self, mpi) -> float:
        cells_per_rank = self.grid * self.grid / self.nprocs
        flop_rate = mpi.ctx.world.machine.core_flops_effective
        return cells_per_rank * self.flops_per_cell / flop_rate

    def main(self, mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.size != self.nprocs:
            raise ConfigError(
                f"{self.label} built for {self.nprocs} ranks, launched on {comm.size}"
            )
        px, py = self.layout()
        x, y = comm.rank % px, comm.rank // px
        halo_x = self.halo_bytes(self.grid / py)  # vertical edges: column height
        halo_y = self.halo_bytes(self.grid / px)
        west = comm.rank - 1 if x > 0 else -1
        east = comm.rank + 1 if x < px - 1 else -1
        north = comm.rank - px if y > 0 else -1
        south = comm.rank + px if y < py - 1 else -1
        step_cpu = self.step_compute_seconds(mpi)
        cells_per_rank = self.grid * self.grid / self.nprocs
        for it in range(self.iterations):
            yield from mpi.compute(step_cpu)
            reqs = []
            for nb, size, tag in (
                (west, halo_x, 60),
                (east, halo_x, 60),
                (north, halo_y, 61),
                (south, halo_y, 61),
            ):
                if nb < 0:
                    continue
                rq = yield from comm.irecv(source=nb, tag=tag)
                sq = yield from comm.isend(nb, nbytes=size, tag=tag)
                reqs += [rq, sq]
            if reqs:
                yield from comm.waitall(reqs)
            # CFL condition: global minimum time step.
            yield from comm.allreduce(nbytes=8)
            if self.checkpoint_every and (it + 1) % self.checkpoint_every == 0:
                # Checkpoint the local sub-domain through POSIX (visible to
                # the density module, as in the paper's report samples).
                nbytes = int(cells_per_rank * self.nvars * 8)
                write_time = nbytes / mpi.ctx.world.machine.fs_stripe_bandwidth
                yield from mpi.posix("open", seconds=1e-4)
                yield from mpi.posix("write", nbytes=nbytes, seconds=write_time)
                yield from mpi.posix("close", seconds=5e-5)
        yield from comm.barrier()
        yield from mpi.finalize()
