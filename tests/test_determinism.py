"""Determinism guarantees: identical seeds give bit-identical campaigns."""

import pytest

from repro.apps import EulerMHD
from repro.apps.nas import CG, SP
from repro.core.comparison import run_tool
from repro.core.session import CouplingSession
from repro.network.machine import small_test_machine
from repro.vmpi import RANDOM, VMPIMap, map_partitions
from repro.vmpi.virtualization import VirtualizedLauncher

MACHINE = small_test_machine(nodes=256, cores_per_node=4)


def _session_fingerprint(seed):
    session = CouplingSession(machine=MACHINE, seed=seed)
    name = session.add_application(SP(16, "C", iterations=2))
    session.set_analyzer(ratio=2.0)
    result = session.run()
    profile = result.report.chapter(name).profile
    topo = result.report.chapter(name).topology
    return (
        result.app(name).walltime,
        result.analyzer_walltime,
        profile.events_total,
        profile.mpi_time_total,
        tuple(sorted(topo.cells.items())),
    )


def test_sessions_bit_identical_across_runs():
    assert _session_fingerprint(5) == _session_fingerprint(5)


def test_seed_changes_random_mapping_not_results():
    """Seeds feed mapping policies; deterministic workloads stay identical
    in event counts even when the random mapping differs."""
    a = _session_fingerprint(5)
    b = _session_fingerprint(6)
    assert a[2] == b[2]  # same events captured
    assert a[4] == b[4]  # same communication matrix


def test_random_mapping_depends_on_seed():
    def mapping_for(seed):
        out = {}

        def prog(mpi, other):
            yield from mpi.init()
            vmap = VMPIMap()
            yield from map_partitions(mpi, vmap, other, policy=RANDOM)
            out[(mpi.partition.name, mpi.rank)] = tuple(vmap.entries)
            yield from mpi.finalize()

        launcher = VirtualizedLauncher(machine=MACHINE, seed=seed)
        launcher.add_program("A", nprocs=12, main=prog, other="B")
        launcher.add_program("B", nprocs=3, main=prog, other="A")
        launcher.run()
        return tuple(sorted(out.items()))

    assert mapping_for(1) == mapping_for(1)
    assert mapping_for(1) != mapping_for(2)


def test_tool_runs_deterministic():
    a = run_tool(CG(16, "C", iterations=2), "scorep_trace", MACHINE, seed=3)
    b = run_tool(CG(16, "C", iterations=2), "scorep_trace", MACHINE, seed=3)
    assert a.walltime == b.walltime
    assert a.full_run_volume_bytes == b.full_run_volume_bytes


def test_multi_app_order_independent_of_dict_iteration():
    """Two sessions with the same apps give identical per-app results."""

    def run_once():
        session = CouplingSession(machine=MACHINE, seed=11)
        session.add_application(CG(8, "C", iterations=2), name="one")
        session.add_application(EulerMHD(8, grid=512, iterations=2), name="two")
        session.set_analyzer(nprocs=4)
        result = session.run()
        return {
            name: (run.walltime, run.events) for name, run in result.apps.items()
        }

    assert run_once() == run_once()
