"""Drivers for the paper's in-text quantitative claims."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.apps.nas import SP
from repro.bench.harness import measure_overhead
from repro.core.comparison import run_tool
from repro.network.machine import CURIE, MachineSpec, TERA100
from repro.telemetry import Telemetry
from repro.util.tables import Table
from repro.util.units import GB, MB


# --------------------------------------------------------------------------------------
# In-text: Bi(SP.C) = 2.37 GB/s vs Bi(SP.D) = 334.99 MB/s at 900 cores
# --------------------------------------------------------------------------------------


@dataclass
class BiResult:
    machine: str
    rows: list[dict] = field(default_factory=list)

    def bi(self, label: str) -> float:
        for row in self.rows:
            if row["app"] == label:
                return row["bi"]
        raise KeyError(label)

    def table(self) -> Table:
        t = Table(
            ["benchmark", "nprocs", "Bi", "overhead_pct", "paper_Bi"],
            title=f"In-text — instrumentation bandwidth Bi at 900 cores ({self.machine})",
        )
        for row in self.rows:
            t.add_row(
                row["app"],
                row["nprocs"],
                f"{row['bi'] / GB:.3f} GB/s" if row["bi"] >= GB else f"{row['bi'] / MB:.1f} MB/s",
                row["overhead_pct"],
                row["paper"],
            )
        return t


def bi_bandwidth_table(
    scale: str = "small",
    machine: MachineSpec = TERA100,
    seed: int = 0,
    telemetry: Telemetry | None = None,
) -> BiResult:
    """Bi comparison of SP.C vs SP.D (paper Sec. IV-C, at 900 cores)."""
    if scale == "paper":
        nprocs = 900
    elif scale == "small":
        nprocs = 225
    else:
        raise ConfigError(f"unknown scale {scale!r}")
    result = BiResult(machine=machine.name)
    for klass, paper_value in (("C", "2.37 GB/s"), ("D", "334.99 MB/s")):
        point = measure_overhead(
            SP(nprocs, klass, iterations=3), machine, ratio=1.0, seed=seed,
            telemetry=telemetry,
        )
        result.rows.append(
            {
                "app": point.app,
                "nprocs": point.nprocs,
                "bi": point.bi_bandwidth,
                "overhead_pct": point.overhead_pct,
                "paper": paper_value,
            }
        )
    return result


# --------------------------------------------------------------------------------------
# In-text: trace volumes — Score-P 313 MB -> 116 GB, online 923.93 MB -> 333.22 GB
# --------------------------------------------------------------------------------------


@dataclass
class TraceSizeResult:
    machine: str
    rows: list[dict] = field(default_factory=list)

    def volume(self, tool: str, nprocs: int) -> int:
        for row in self.rows:
            if row["tool"] == tool and row["nprocs"] == nprocs:
                return row["volume"]
        raise KeyError((tool, nprocs))

    def ratio(self, nprocs: int) -> float:
        """online volume / Score-P trace volume (paper: ~2.9x)."""
        return self.volume("online", nprocs) / self.volume("scorep_trace", nprocs)

    def table(self) -> Table:
        t = Table(
            ["tool", "nprocs", "full_run_volume_GB"],
            title=f"In-text — SP.D full-run measurement volumes ({self.machine})",
        )
        for row in self.rows:
            t.add_row(row["tool"], row["nprocs"], row["volume"] / GB)
        return t


def trace_size_table(
    scale: str = "small",
    machine: MachineSpec = CURIE,
    seed: int = 0,
    telemetry: Telemetry | None = None,
) -> TraceSizeResult:
    """Full-run data volumes for SP.D: online streams vs Score-P traces.

    Volumes are extrapolated from the simulated iterations to the official
    iteration count (both tools scale linearly in events).
    """
    if scale == "paper":
        counts = [256, 1024, 4096]
    elif scale == "small":
        counts = [64, 256]
    else:
        raise ConfigError(f"unknown scale {scale!r}")
    result = TraceSizeResult(machine=machine.name)
    for nprocs in counts:
        for tool in ("online", "scorep_trace"):
            run = run_tool(
                SP(nprocs, "D", iterations=3), tool, machine, seed=seed,
                telemetry=telemetry,
            )
            result.rows.append(
                {"tool": tool, "nprocs": nprocs, "volume": run.full_run_volume_bytes}
            )
    return result


# --------------------------------------------------------------------------------------
# In-text: FS comparison — 500 GB/s scaled to 9.1 GB/s at 2560 cores;
# streams competitive until ratio ~1/25; 1/10 a good trade-off
# --------------------------------------------------------------------------------------


@dataclass
class FSComparisonResult:
    machine: str
    writers: int
    fs_scaled: float
    rows: list[dict] = field(default_factory=list)

    def crossover_ratio(self) -> float:
        """Largest swept ratio at which streams still beat the scaled FS."""
        beating = [r["ratio"] for r in self.rows if r["throughput"] > self.fs_scaled]
        return max(beating) if beating else 0.0

    def table(self) -> Table:
        t = Table(
            ["ratio", "readers", "stream_GBps", "fs_scaled_GBps", "streams_win"],
            title=(
                f"In-text — streams vs scaled FS at {self.writers} writers "
                f"({self.machine})"
            ),
        )
        for row in self.rows:
            t.add_row(
                int(row["ratio"]),
                int(row["readers"]),
                row["throughput"] / GB,
                self.fs_scaled / GB,
                row["throughput"] > self.fs_scaled,
            )
        return t


def fs_comparison_table(
    scale: str = "small",
    machine: MachineSpec = TERA100,
    seed: int = 0,
    telemetry: Telemetry | None = None,
) -> FSComparisonResult:
    """Stream throughput against the job-scaled file-system bandwidth."""
    from repro.bench.figures import _stream_point
    from repro.util.units import GIB, MIB

    if scale == "paper":
        writers = 2560
        ratios = [1, 2, 4, 8, 10, 16, 25, 32, 64]
        bytes_per_writer = 1 * GIB
    elif scale == "small":
        writers = 320
        ratios = [1, 4, 10, 16, 32, 64]
        bytes_per_writer = 32 * MIB
    else:
        raise ConfigError(f"unknown scale {scale!r}")
    result = FSComparisonResult(
        machine=machine.name,
        writers=writers,
        fs_scaled=machine.fs_job_bandwidth(writers),
    )
    for ratio in ratios:
        point = _stream_point(
            machine, writers, ratio, bytes_per_writer, MIB, seed, telemetry=telemetry
        )
        result.rows.append(point)
    return result
