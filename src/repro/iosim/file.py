"""Per-rank file handles over the :class:`~repro.iosim.filesystem.ParallelFS`.

A :class:`SimFile` is what a trace writer sees: ``open`` costs a metadata
transaction, ``write`` moves bytes through the shared data path (and tracks
the logical file size), ``close`` costs another metadata transaction.  All
methods are generators to be driven by the simulated process that owns the
handle.
"""

from __future__ import annotations

from repro.errors import IOSimError
from repro.iosim.filesystem import ParallelFS


class SimFile:
    """One logical file opened by one simulated rank."""

    def __init__(self, fs: ParallelFS, path: str):
        self.fs = fs
        self.path = path
        self.size = 0
        self.is_open = False
        self.writes = 0

    def open(self, create: bool = True):
        """Generator: run the open/create metadata transaction."""
        if self.is_open:
            raise IOSimError(f"{self.path}: already open")
        if create:
            self.fs.files_created += 1
        yield from self.fs.metadata_op()
        self.is_open = True

    def write(self, nbytes: int):
        """Generator: append ``nbytes`` through the shared data path."""
        if not self.is_open:
            raise IOSimError(f"{self.path}: write on closed file")
        if nbytes < 0:
            raise IOSimError(f"{self.path}: negative write")
        self.writes += 1
        self.size += nbytes
        self.fs.bytes_written += nbytes
        yield self.fs._capped_transfer(nbytes, None)

    def read(self, nbytes: int):
        """Generator: read ``nbytes`` through the shared data path."""
        if not self.is_open:
            raise IOSimError(f"{self.path}: read on closed file")
        if nbytes < 0:
            raise IOSimError(f"{self.path}: negative read")
        self.fs.bytes_read += nbytes
        yield self.fs._capped_transfer(nbytes, None)

    def close(self):
        """Generator: run the close metadata transaction."""
        if not self.is_open:
            raise IOSimError(f"{self.path}: close on closed file")
        yield from self.fs.metadata_op()
        self.is_open = False
