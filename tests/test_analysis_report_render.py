"""Report rendering snapshot checks over a realistic full pipeline run."""

import pytest

from repro.analysis import AnalysisConfig
from repro.apps.nas import LU
from repro.core.session import CouplingSession
from repro.network.machine import small_test_machine

MACHINE = small_test_machine(nodes=256, cores_per_node=4)


@pytest.fixture(scope="module")
def full_report():
    cfg = AnalysisConfig(
        modules=(
            "profile",
            "topology",
            "density",
            "waitstate",
            "otf2proxy",
            "alerts",
            "latesender",
        )
    )
    session = CouplingSession(machine=MACHINE, seed=21, analysis=cfg)
    session.add_application(LU(16, "C", iterations=1), name="LU.C")
    session.set_analyzer(nprocs=4)
    return session.run().report


SECTIONS = [
    "## Application: LU.C (16 ranks)",
    "### MPI profile",
    "### Point-to-point topology",
    "### Density maps",
    "### Wait-state analysis (preliminary)",
    "### Real-time alerts",
    "### Selective trace (OTF2 proxy)",
    "### Late-sender analysis (distributed)",
]


@pytest.mark.parametrize("section", SECTIONS)
def test_every_section_present(full_report, section):
    assert section in full_report.render()


def test_section_ordering(full_report):
    text = full_report.render()
    positions = [text.index(s) for s in SECTIONS]
    assert positions == sorted(positions)


def test_quantities_consistent_across_sections(full_report):
    chapter = full_report.chapter("LU.C")
    # Messages counted by the topology module equal the profile's send hits.
    hits, _size, _time = chapter.topology.totals()
    profile_sends = sum(
        r[1] for r in chapter.profile.rows() if r[0] in ("MPI_Send", "MPI_Isend")
    )
    assert hits == profile_sends
    # The late-sender matcher paired exactly those sends.
    assert chapter.latesender.matched_pairs == profile_sends
    # The proxy's view of the stream equals the profile's.
    assert chapter.otf2proxy.events_seen == chapter.profile.events_total


def test_verbose_render_is_superset(full_report):
    brief = full_report.render(verbosity=1)
    verbose = full_report.render(verbosity=2)
    assert len(verbose) > len(brief)


def test_wait_time_positive_for_wavefront(full_report):
    """LU's pipelined wavefront necessarily produces receive waiting."""
    chapter = full_report.chapter("LU.C")
    assert chapter.waitstate.wait_time.sum() > 0
    assert chapter.latesender.late_send_time.sum() > 0
