"""The versioned pack frame: one header plus typed, length-prefixed sections.

Wire layout (all little-endian)::

    u32 magic "EVF2" | u16 version | u16 app_id | u32 rank | u32 count |
    u16 nsections | u16 flags
    -- then `nsections` sections, each:
    u16 type | u16 reserved | u32 length | <length bytes>

Section types::

    1  PAYLOAD     event records, possibly transformed by a codec chain
    2  CRC         u32 crc32 over every frame byte before this section's header
    3  PROVENANCE  u64 flow_id | u16 origin_app | u32 origin_rank | f64 t_seal
    4  CODEC       UTF-8 codec-chain spec, e.g. "delta+dict+zlib"
    5  SAMPLING    u32 events dropped by the adaptive sampler for this pack

The writer always emits the CRC section last so it covers everything in
front of it; sections a reader does not recognise are skipped (and
preserved on re-emit), making the format forward-compatible.  ``count``
is the number of event records the payload decodes to — after sampling,
before any lossless transform.

Frame parsing lives *only* here.  The packer, the stream layer, fault
tampering and analyzer ingest all share this implementation; there is no
trailer sniffing anywhere else.

Zero-copy contract: :func:`parse_frame` stores section bodies as
``memoryview`` slices into the caller's blob — no per-section copies on
the decode path.  A view pins the blob alive and is safe to hold as long
as the blob is immutable (``bytes``); callers that parse a mutable
buffer, or need the sections to outlive a buffer they plan to recycle,
must call :meth:`Frame.materialize` first (see DESIGN §14).

Content accounting: the modelled byte volume of a pack is
:func:`frame_content_size` — a fixed 16-byte logical header plus 40 bytes
per record, matching the original v1 layout exactly.  Framing overhead,
checksums, provenance stamps and codec output sizes are all
accounting-exempt, so the integrity/observability envelope never shifts
simulated figures and the identity chain stays bit-identical to the
pre-frame format's timing.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import (
    ChecksumError,
    FrameTruncatedError,
    PackFormatError,
    SectionLengthError,
)
from repro.telemetry import hostprof

FRAME_MAGIC = 0x45564632  # "EVF2"
FRAME_VERSION = 2
_HEADER_FMT = "<IHHIIHH"  # magic, version, app_id, rank, count, nsections, flags
_HEADER_STRUCT = struct.Struct(_HEADER_FMT)
FRAME_HEADER_SIZE = _HEADER_STRUCT.size
assert FRAME_HEADER_SIZE == 20
_SECTION_FMT = "<HHI"  # type, reserved, length
_SECTION_STRUCT = struct.Struct(_SECTION_FMT)
SECTION_HEADER_SIZE = _SECTION_STRUCT.size
assert SECTION_HEADER_SIZE == 8

SEC_PAYLOAD = 1
SEC_CRC = 2
SEC_PROVENANCE = 3
SEC_CODEC = 4
SEC_SAMPLING = 5

_SECTION_NAMES = {
    SEC_PAYLOAD: "PAYLOAD",
    SEC_CRC: "CRC",
    SEC_PROVENANCE: "PROVENANCE",
    SEC_CODEC: "CODEC",
    SEC_SAMPLING: "SAMPLING",
}

_PROV_FMT = "<QHId"  # flow_id, origin_app, origin_rank, t_seal
_PROV_STRUCT = struct.Struct(_PROV_FMT)
PROVENANCE_BODY_SIZE = _PROV_STRUCT.size
assert PROVENANCE_BODY_SIZE == 22
_CRC_FMT = "<I"
_CRC_STRUCT = struct.Struct(_CRC_FMT)
CRC_BODY_SIZE = 4
_SAMPLING_FMT = "<I"
_SAMPLING_STRUCT = struct.Struct(_SAMPLING_FMT)
SAMPLING_BODY_SIZE = 4

#: the CRC section header never varies — emit it as a constant
_CRC_SECTION_HEADER = _SECTION_STRUCT.pack(SEC_CRC, 0, CRC_BODY_SIZE)

# Modelled content accounting (v1-compatible): 16-byte logical header plus
# 40 bytes per record.  These are *accounting* constants, not wire offsets;
# instrument.events asserts its record size matches CONTENT_RECORD_SIZE.
CONTENT_HEADER_SIZE = 16
CONTENT_RECORD_SIZE = 40


def section_name(kind: int) -> str:
    """Human-readable name for a section type (``UNKNOWN(n)`` otherwise)."""
    return _SECTION_NAMES.get(kind, f"UNKNOWN({kind})")


@dataclass(frozen=True)
class PackProvenance:
    """The compact flow stamp carried by a provenance-traced pack."""

    flow_id: int
    app_id: int
    rank: int
    t_seal: float


@dataclass(slots=True)
class Frame:
    """A parsed (or under-construction) pack frame.

    ``sections`` holds every non-CRC section in wire order; the CRC is
    recomputed on :meth:`to_bytes`, so round-tripping a frame through
    parse → edit → emit always yields a valid checksum.  ``crc_ok`` /
    ``stored_crc`` report what :func:`parse_frame` found on the wire
    (``None`` for a frame built in memory).

    Section bodies are ``memoryview`` slices of the parsed blob (see the
    module docstring's zero-copy contract) or ``bytes`` for frames built
    or edited in memory; both compare, slice, hash-dump and re-emit the
    same way.  Call :meth:`materialize` to force plain ``bytes`` bodies.
    """

    app_id: int
    rank: int
    count: int
    flags: int = 0
    sections: list[tuple[int, bytes | memoryview]] = field(default_factory=list)
    stored_crc: int | None = None
    crc_ok: bool | None = None
    #: Body byte offsets aligned with ``sections`` — filled by
    #: :func:`parse_frame` only (empty for frames built in memory), so
    #: tooling can address wire bytes without a second format walk.
    offsets: list[int] = field(default_factory=list)

    def section(self, kind: int) -> bytes | memoryview | None:
        """Body of the first section of ``kind``, or ``None``."""
        for stype, body in self.sections:
            if stype == kind:
                return body
        return None

    def materialize(self) -> "Frame":
        """Copy every section body to plain ``bytes``, detaching the frame
        from the parsed blob (required before the blob's buffer is reused
        or mutated; a no-op for frames built in memory)."""
        self.sections = [(t, bytes(b)) for t, b in self.sections]
        return self

    @property
    def payload(self) -> bytes | memoryview:
        return self.section(SEC_PAYLOAD) or b""

    @property
    def codec(self) -> str:
        """The codec-chain spec this payload was encoded with ("" = identity)."""
        body = self.section(SEC_CODEC)
        if body is None:
            return ""
        try:
            return bytes(body).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SectionLengthError(f"codec descriptor is not UTF-8: {exc}") from exc

    @property
    def provenance(self) -> PackProvenance | None:
        body = self.section(SEC_PROVENANCE)
        if body is None:
            return None
        flow_id, app_id, rank, t_seal = _PROV_STRUCT.unpack(body)
        return PackProvenance(flow_id=flow_id, app_id=app_id, rank=rank, t_seal=t_seal)

    @property
    def events_dropped(self) -> int:
        """Events the adaptive sampler dropped while sealing this pack."""
        body = self.section(SEC_SAMPLING)
        if body is None:
            return 0
        return _SAMPLING_STRUCT.unpack(body)[0]

    def replace_section(self, kind: int, body: bytes) -> None:
        """Replace the first section of ``kind`` in place, or append one."""
        for i, (stype, _) in enumerate(self.sections):
            if stype == kind:
                self.sections[i] = (kind, bytes(body))
                return
        self.sections.append((kind, bytes(body)))

    def drop_section(self, kind: int) -> None:
        """Remove every section of ``kind`` (no-op when absent)."""
        self.sections = [(t, b) for t, b in self.sections if t != kind]

    def with_provenance(self, prov: PackProvenance) -> "Frame":
        self.replace_section(
            SEC_PROVENANCE,
            _PROV_STRUCT.pack(prov.flow_id, prov.app_id, prov.rank, prov.t_seal),
        )
        return self

    @property
    def content_size(self) -> int:
        """Modelled content bytes: logical header + fixed-width records."""
        return CONTENT_HEADER_SIZE + self.count * CONTENT_RECORD_SIZE

    def to_bytes(self) -> bytes:
        """Serialize, appending a freshly computed CRC section last.

        Single-pass: header and sections are appended to one reusable
        module-level ``bytearray`` (the emit path runs on the
        single-threaded kernel loop; re-entrant calls fall back to a
        local buffer), the CRC is computed over it in place, and the
        only copy made is the immutable ``bytes`` returned.
        """
        global _emit_busy
        if _emit_busy:
            buf = bytearray()
            reused = False
        else:
            _emit_busy = True
            buf = _EMIT_BUF
            del buf[:]
            reused = True
        try:
            buf += _HEADER_STRUCT.pack(
                FRAME_MAGIC,
                FRAME_VERSION,
                self.app_id,
                self.rank,
                self.count,
                len(self.sections) + 1,  # + the CRC section
                self.flags,
            )
            pack_section = _SECTION_STRUCT.pack
            for stype, body in self.sections:
                buf += pack_section(stype, 0, len(body))
                buf += body
            crc = zlib.crc32(buf)
            buf += _CRC_SECTION_HEADER
            buf += _CRC_STRUCT.pack(crc)
            return bytes(buf)
        finally:
            if reused:
                _emit_busy = False


#: reusable emit buffer + busy flag (single-threaded hot path; see to_bytes)
_EMIT_BUF = bytearray()
_emit_busy = False


def build_frame(
    app_id: int,
    rank: int,
    count: int,
    payload: bytes,
    codec: str = "",
    provenance: PackProvenance | None = None,
    events_dropped: int = 0,
    flags: int = 0,
) -> bytes:
    """Serialize one frame with the canonical section order.

    Sections are written PAYLOAD, CODEC?, SAMPLING?, PROVENANCE?, CRC —
    optional sections appear only when non-trivial, so a plain
    identity-chain pack carries exactly payload + CRC.
    """
    if not (0 <= app_id < 2**16):
        raise PackFormatError(f"app_id {app_id} outside u16")
    if not (0 <= rank < 2**32):
        raise PackFormatError(f"rank {rank} outside u32")
    hp = hostprof.ACTIVE
    t_host = hp.now() if hp.enabled else 0.0
    frame = Frame(app_id=app_id, rank=rank, count=count, flags=flags)
    sections = frame.sections
    sections.append((SEC_PAYLOAD, bytes(payload)))
    if codec:
        sections.append((SEC_CODEC, codec.encode("utf-8")))
    if events_dropped:
        sections.append((SEC_SAMPLING, _SAMPLING_STRUCT.pack(events_dropped)))
    if provenance is not None:
        frame.with_provenance(provenance)
    blob = frame.to_bytes()
    if hp.enabled:
        hp.timer("frame.emit").add(hp.now() - t_host, nbytes=len(blob))
    return blob


def parse_frame(blob, verify: bool = True) -> Frame:
    """Parse one frame; the single wire-format reader in the codebase.

    With ``verify=True`` (the default) a missing or mismatching CRC
    section raises :class:`ChecksumError`; with ``verify=False`` the
    checksum outcome is only recorded on ``Frame.crc_ok`` so diagnostic
    tools can inspect damaged frames.  Unknown section types are kept in
    ``Frame.sections`` untouched (forward compatibility: they survive a
    parse → emit round trip).

    Section bodies are zero-copy ``memoryview`` slices of ``blob``; see
    the module docstring for the lifetime contract.
    """
    hp = hostprof.ACTIVE
    t_host = hp.now() if hp.enabled else 0.0
    try:
        view = memoryview(blob)
    except TypeError:
        raise PackFormatError(f"pack payload is not bytes: {type(blob).__name__}")
    total = len(view)
    if total < FRAME_HEADER_SIZE:
        raise FrameTruncatedError(
            f"frame of {total} bytes shorter than {FRAME_HEADER_SIZE}-byte header"
        )
    magic, version, app_id, rank, count, nsections, flags = _HEADER_STRUCT.unpack_from(
        view, 0
    )
    if magic != FRAME_MAGIC:
        raise PackFormatError(f"bad pack magic {magic:#010x}")
    if version != FRAME_VERSION:
        raise PackFormatError(f"unsupported pack version {version}")
    frame = Frame(app_id, rank, count, flags)
    sections = frame.sections
    offsets = frame.offsets
    unpack_section = _SECTION_STRUCT.unpack_from
    offset = FRAME_HEADER_SIZE
    crc_covered_end: int | None = None
    for _ in range(nsections):
        if offset + SECTION_HEADER_SIZE > total:
            raise FrameTruncatedError(
                f"frame ended at byte {total} inside a section header at {offset}"
            )
        stype, _reserved, length = unpack_section(view, offset)
        body_start = offset + SECTION_HEADER_SIZE
        if body_start + length > total:
            raise FrameTruncatedError(
                f"section {section_name(stype)} declares {length} bytes at offset "
                f"{body_start} but frame has {total}"
            )
        if stype == SEC_CRC:
            if length != CRC_BODY_SIZE:
                raise SectionLengthError(
                    f"CRC section of {length} bytes, expected {CRC_BODY_SIZE}"
                )
            if crc_covered_end is None:  # first CRC wins; covers bytes before it
                crc_covered_end = offset
                frame.stored_crc = _CRC_STRUCT.unpack_from(view, body_start)[0]
        else:
            if stype == SEC_PROVENANCE and length != PROVENANCE_BODY_SIZE:
                raise SectionLengthError(
                    f"provenance section of {length} bytes, "
                    f"expected {PROVENANCE_BODY_SIZE}"
                )
            if stype == SEC_SAMPLING and length != SAMPLING_BODY_SIZE:
                raise SectionLengthError(
                    f"sampling section of {length} bytes, expected {SAMPLING_BODY_SIZE}"
                )
            sections.append((stype, view[body_start : body_start + length]))
            offsets.append(body_start)
        offset = body_start + length
    if offset != total:
        raise SectionLengthError(
            f"{total - offset} trailing bytes after the {nsections} declared sections"
        )
    if crc_covered_end is not None:
        frame.crc_ok = zlib.crc32(view[:crc_covered_end]) == frame.stored_crc
    if verify:
        if frame.stored_crc is None:
            raise ChecksumError("frame has no CRC section")
        if not frame.crc_ok:
            computed = zlib.crc32(view[:crc_covered_end])
            raise ChecksumError(
                f"pack checksum mismatch: stored {frame.stored_crc:#010x}, "
                f"computed {computed:#010x}"
            )
    if hp.enabled:
        hp.timer("frame.parse").add(hp.now() - t_host, nbytes=total)
    return frame


@dataclass(frozen=True)
class FrameInfo:
    """Cheap header peek: everything knowable without walking sections."""

    app_id: int
    rank: int
    count: int
    nsections: int
    flags: int

    @property
    def content_size(self) -> int:
        return CONTENT_HEADER_SIZE + self.count * CONTENT_RECORD_SIZE


def _header_fields(blob) -> tuple[int, int, int, int, int]:
    """Validated header fields (app_id, rank, count, nsections, flags)."""
    try:
        view = memoryview(blob)
    except TypeError:
        raise PackFormatError(f"pack payload is not bytes: {type(blob).__name__}")
    if len(view) < FRAME_HEADER_SIZE:
        raise FrameTruncatedError(
            f"frame of {len(view)} bytes shorter than {FRAME_HEADER_SIZE}-byte header"
        )
    magic, version, app_id, rank, count, nsections, flags = _HEADER_STRUCT.unpack_from(
        view, 0
    )
    if magic != FRAME_MAGIC:
        raise PackFormatError(f"bad pack magic {magic:#010x}")
    if version != FRAME_VERSION:
        raise PackFormatError(f"unsupported pack version {version}")
    return app_id, rank, count, nsections, flags


def peek_header(blob) -> FrameInfo:
    """Decode just the 20-byte frame header (no section walk, no CRC)."""
    app_id, rank, count, nsections, flags = _header_fields(blob)
    return FrameInfo(
        app_id=app_id, rank=rank, count=count, nsections=nsections, flags=flags
    )


def frame_content_size(blob) -> int:
    """Modelled content bytes of a serialized frame (header peek only)."""
    return CONTENT_HEADER_SIZE + _header_fields(blob)[2] * CONTENT_RECORD_SIZE


def peek_provenance(blob) -> PackProvenance | None:
    """Read a pack's provenance stamp without touching the payload.

    Returns ``None`` for anything that is not a provenance-stamped frame —
    non-bytes payloads, damaged frames, or frames without the section — so
    hot paths can call it unconditionally on whatever travels a stream.

    This is a light section-header walk: it performs every structural
    check :func:`parse_frame` does (so the None-vs-stamp outcome is
    identical to ``parse_frame(blob, verify=False).provenance`` with
    errors mapped to ``None``) but never copies a body, builds a
    :class:`Frame`, or computes the CRC.
    """
    try:
        view = memoryview(blob)
    except TypeError:
        return None
    total = len(view)
    if total < FRAME_HEADER_SIZE:
        return None
    magic, version, _app_id, _rank, _count, nsections, _flags = (
        _HEADER_STRUCT.unpack_from(view, 0)
    )
    if magic != FRAME_MAGIC or version != FRAME_VERSION:
        return None
    unpack_section = _SECTION_STRUCT.unpack_from
    offset = FRAME_HEADER_SIZE
    prov_start = -1
    for _ in range(nsections):
        if offset + SECTION_HEADER_SIZE > total:
            return None
        stype, _reserved, length = unpack_section(view, offset)
        body_start = offset + SECTION_HEADER_SIZE
        if body_start + length > total:
            return None
        if stype == SEC_CRC:
            if length != CRC_BODY_SIZE:
                return None
        elif stype == SEC_PROVENANCE:
            if length != PROVENANCE_BODY_SIZE:
                return None
            if prov_start < 0:  # first provenance section wins, like parse_frame
                prov_start = body_start
        elif stype == SEC_SAMPLING and length != SAMPLING_BODY_SIZE:
            return None
        offset = body_start + length
    if offset != total or prov_start < 0:
        return None
    flow_id, app_id, rank, t_seal = _PROV_STRUCT.unpack_from(view, prov_start)
    return PackProvenance(flow_id=flow_id, app_id=app_id, rank=rank, t_seal=t_seal)
