"""VMPI_Stream: persistent asynchronous data channels (paper Sec. III-A, Fig. 9).

Behavioural contract from the paper:

* UNIX-pipe-like interface: ``write`` is non-blocking *until all
  asynchronous buffers are full*, preserving an adaptation window between
  producer and consumer.
* The read endpoint keeps ``NA`` receive buffers **per incoming stream** so
  a buffer is always available for matched reception (no unexpected
  messages); the write endpoint shares ``NA`` output buffers across all its
  endpoints to bound memory (blocks are ~1 MB for instrumentation).
* A stream may connect one writer to several readers (and vice versa); a
  load-balancing policy — none / random / round-robin — picks the endpoint
  of each block.
* Non-blocking reads return :data:`EAGAIN`; once every connected writer has
  closed and all data is drained, reads return EOF (0), mirroring the
  paper's read loop (Figure 12).

Backpressure is physical, not simulated-by-fiat: blocks above the eager
threshold use rendezvous sends, which only complete once the reader has a
receive buffer posted — a slow reader therefore stalls the writer exactly
when writer slots and reader buffers are exhausted.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import StreamClosedError, VMPIError
from repro.mpi.status import Status
from repro.mpi.world import ProgramAPI
from repro.simt.primitives import SimEvent
from repro.simt.resources import Resource
from repro.telemetry import NULL_TELEMETRY, rank_pid
from repro.util.rng import derive_rng
from repro.vmpi.mapping import VMPIMap

#: Return value of a non-blocking read with no data available.
EAGAIN = -11
#: Return value of a read once all remote endpoints closed (paper: 0).
EOF = 0

BALANCE_NONE = "none"
BALANCE_RANDOM = "random"
BALANCE_ROUND_ROBIN = "round_robin"

_VALID_POLICIES = (BALANCE_NONE, BALANCE_RANDOM, BALANCE_ROUND_ROBIN)

_TAG_STREAM_BASE = 800_000

#: payload marker of a close message
_CLOSE = "__vmpi_stream_close__"


class VMPIStream:
    """One endpoint of a persistent asynchronous stream."""

    def __init__(
        self,
        block_size: int = 1024 * 1024,
        balance: str = BALANCE_ROUND_ROBIN,
        na_buffers: int = 3,
        channel: int = 0,
    ):
        if block_size <= 0:
            raise VMPIError(f"block_size must be > 0, got {block_size}")
        if balance not in _VALID_POLICIES:
            raise VMPIError(f"unknown balance policy {balance!r}")
        if na_buffers < 1:
            raise VMPIError(f"na_buffers must be >= 1, got {na_buffers}")
        if not (0 <= channel < 10_000):
            raise VMPIError(f"channel must be in [0, 10000), got {channel}")
        self.block_size = block_size
        self.balance = balance
        self.na = na_buffers
        self.channel = channel
        self.mode: str | None = None
        self.endpoints: list[int] = []  # peer global ranks
        self.blocks_written = 0
        self.blocks_read = 0
        self.bytes_written = 0
        self.bytes_read = 0
        # Lightweight always-on introspection (see stats()).
        self.eagain_returns = 0
        self.write_stall_s = 0.0
        self.read_wait_s = 0.0
        self.write_buffers_hwm = 0
        self.read_buffers_hwm = 0
        self._tel = NULL_TELEMETRY
        self._pid = 0
        # writer state
        self._slots: Resource | None = None
        self._rr_next = 0
        self._rng = None
        # reader state
        self._ready: deque[Status] | None = None
        self._wake: SimEvent | None = None
        self._closes_pending = 0
        self._mpi: ProgramAPI | None = None
        self._closed = False

    # -- opening ---------------------------------------------------------------------

    def open_map(self, mpi: ProgramAPI, vmap: VMPIMap, mode: str):
        """Generator: connect to every peer of a ``VMPI_Map``."""
        yield from self.open_ranks(mpi, list(vmap.entries), mode)

    def open_ranks(self, mpi: ProgramAPI, peers: list[int], mode: str):
        """Generator: connect to explicit peer global ranks."""
        if self.mode is not None:
            raise VMPIError("stream already open")
        if mode not in ("r", "w"):
            raise VMPIError(f"mode must be 'r' or 'w', got {mode!r}")
        if not peers:
            raise VMPIError("stream needs at least one endpoint")
        if len(set(peers)) != len(peers):
            raise VMPIError("duplicate endpoints in stream")
        self.mode = mode
        self.endpoints = list(peers)
        self._mpi = mpi
        self._tel = mpi.ctx.telemetry
        self._pid = rank_pid(mpi.ctx.global_rank)
        kernel = mpi.ctx.kernel
        if mode == "w":
            self._slots = Resource(kernel, capacity=self.na, name="vmpi.wbuf")
            self._rng = derive_rng(
                mpi.ctx.world.seed, "stream", mpi.ctx.global_rank, self.channel
            )
        else:
            self._ready = deque()
            self._closes_pending = len(peers)
            # NA receive buffers per incoming stream: pre-post NA receives
            # from every writer so reception never hits an unexpected path.
            for peer in peers:
                for _ in range(self.na):
                    self._post_recv(peer)
        yield kernel.timeout(0.0)

    @property
    def tag(self) -> int:
        return _TAG_STREAM_BASE + self.channel

    # -- writer side ---------------------------------------------------------------------

    def write(self, nbytes: int | None = None, payload: Any = None):
        """Generator: write one block; returns the block size written.

        Blocks only when all ``NA`` shared output buffers are in flight
        (i.e. unmatched by any reader) — the paper's adaptation window.
        """
        self._require("w", "write")
        nbytes = self.block_size if nbytes is None else int(nbytes)
        if not (0 < nbytes <= self.block_size):
            raise VMPIError(f"write of {nbytes} outside (0, {self.block_size}]")
        mpi = self._mpi
        kernel = mpi.ctx.kernel
        tel = self._tel
        span = (
            tel.span("stream.write", pid=self._pid, cat="stream", args={"nbytes": nbytes})
            if tel.enabled
            else None
        )
        t_acquire = kernel.now
        yield self._slots.acquire()
        # Time spent waiting for a free output buffer: the rendezvous-driven
        # backpressure stall of a slow reader.
        stall = kernel.now - t_acquire
        self.write_stall_s += stall
        if self._slots.in_use > self.write_buffers_hwm:
            self.write_buffers_hwm = self._slots.in_use
        # Copy into the asynchronous output buffer.
        copy_time = nbytes / mpi.ctx.world.machine.intra_node_bandwidth
        if copy_time > 0:
            yield kernel.timeout(copy_time)
        dest = self._pick_endpoint()
        req = yield from mpi.comm_universe._raw_isend(
            dest, nbytes=nbytes, tag=self.tag, payload=payload
        )
        req.event.add_callback(lambda _ev: self._slots.release())
        self.blocks_written += 1
        self.bytes_written += nbytes
        if tel.enabled:
            tel.counter("stream.blocks_written").inc()
            tel.counter("stream.bytes_written").inc(nbytes)
            tel.histogram("stream.write_stall_s").observe(stall)
            tel.gauge("stream.write_buffers_in_flight", pid=self._pid).set(
                self._slots.in_use
            )
            span.end(stall_s=stall)
        return nbytes

    def _pick_endpoint(self) -> int:
        if len(self.endpoints) == 1 or self.balance == BALANCE_NONE:
            return self.endpoints[0]
        if self.balance == BALANCE_RANDOM:
            return self._rng.choice(self.endpoints)
        dest = self.endpoints[self._rr_next % len(self.endpoints)]
        self._rr_next += 1
        return dest

    # -- reader side ----------------------------------------------------------------------

    def _post_recv(self, peer: int) -> None:
        mpi = self._mpi
        comm = mpi.comm_universe
        peer_comm_rank = comm.group.rank_of_global[peer]
        completion = mpi.ctx.mailbox.post(
            comm.id, peer_comm_rank, self.tag, mpi.ctx.world.cost.o_recv
        )
        completion.add_callback(self._on_block)

    def _on_block(self, ev: SimEvent) -> None:
        status: Status = ev.value
        self._ready.append(status)
        if len(self._ready) > self.read_buffers_hwm:
            self.read_buffers_hwm = len(self._ready)
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()
            self._wake = None

    def read(self, nonblock: bool = False):
        """Generator: read one block.

        Returns ``(nbytes, payload)``; ``(EOF, None)`` once all writers have
        closed and data is drained; ``(EAGAIN, None)`` if ``nonblock`` and no
        block is available (paper: try the next endpoint, avoid circular
        waits).
        """
        self._require("r", "read")
        mpi = self._mpi
        kernel = mpi.ctx.kernel
        tel = self._tel
        span = (
            tel.span("stream.read", pid=self._pid, cat="stream") if tel.enabled else None
        )
        while True:
            while self._ready:
                status = self._ready.popleft()
                result = self._consume(status)
                if result is not None:
                    # Charge the copy out of the reception buffer.
                    copy_time = result[0] / mpi.ctx.world.machine.intra_node_bandwidth
                    if copy_time > 0:
                        yield kernel.timeout(copy_time)
                    if tel.enabled:
                        tel.counter("stream.blocks_read").inc()
                        tel.counter("stream.bytes_read").inc(result[0])
                        tel.gauge("stream.read_buffers_ready", pid=self._pid).set(
                            len(self._ready)
                        )
                        span.end(nbytes=result[0])
                    return result
            if self._closes_pending == 0:
                if span is not None:
                    span.end(eof=True)
                return (EOF, None)
            if nonblock:
                self.eagain_returns += 1
                if tel.enabled:
                    tel.counter("stream.eagain_returns").inc()
                    span.end(eagain=True)
                yield kernel.timeout(0.0)
                return (EAGAIN, None)
            t_wait = kernel.now
            self._wake = SimEvent(kernel, name="stream.wake")
            yield self._wake
            self.read_wait_s += kernel.now - t_wait
            if tel.enabled:
                tel.histogram("stream.read_wait_s").observe(kernel.now - t_wait)

    def _consume(self, status: Status) -> tuple[int, Any] | None:
        """Handle one arrived message; None for protocol (close) markers."""
        peer_global = self._mpi.comm_universe.global_rank_of(status.source)
        if status.payload is _CLOSE:
            self._closes_pending -= 1
            return None
        # Re-post the consumed buffer for this peer to keep NA outstanding.
        self._post_recv(peer_global)
        self.blocks_read += 1
        self.bytes_read += status.nbytes
        return (status.nbytes, status.payload)

    # -- shutdown -----------------------------------------------------------------------------

    def close(self):
        """Generator: close the stream.

        Writers notify every endpoint (readers then see EOF); readers simply
        mark the endpoint closed.
        """
        if self.mode is None or self._closed:
            raise StreamClosedError("close() on unopened or already-closed stream")
        self._closed = True
        mpi = self._mpi
        if self.mode == "w":
            # Drain: wait until every output buffer is free again, so close
            # cannot overtake pending data (FIFO per (src, tag) guarantees
            # the close marker arrives last).
            for _ in range(self.na):
                yield self._slots.acquire()
            for _ in range(self.na):
                self._slots.release()
            for peer in self.endpoints:
                yield from mpi.comm_universe._raw_isend(
                    peer, nbytes=1, tag=self.tag, payload=_CLOSE
                )
        else:
            yield mpi.ctx.kernel.timeout(0.0)

    # -- introspection ------------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Lightweight endpoint introspection, available with telemetry off.

        ``write_buffers_in_flight`` counts output buffers not yet matched by
        a reader (the paper's adaptation window in use);
        ``read_buffers_ready`` counts received blocks waiting to be consumed;
        ``write_stall_s`` is the accumulated backpressure stall,
        ``read_wait_s`` the accumulated blocking-read wait and
        ``eagain_returns`` the number of empty non-blocking reads.  The
        ``*_hwm`` keys are buffer-occupancy high-water marks, so saturation
        (hwm pinned at ``NA``) is visible without telemetry enabled.
        """
        return {
            "mode": self.mode,
            "endpoints": len(self.endpoints),
            "blocks_written": self.blocks_written,
            "bytes_written": self.bytes_written,
            "blocks_read": self.blocks_read,
            "bytes_read": self.bytes_read,
            "eagain_returns": self.eagain_returns,
            "write_stall_s": self.write_stall_s,
            "read_wait_s": self.read_wait_s,
            "write_buffers_in_flight": self._slots.in_use if self._slots else 0,
            "read_buffers_ready": len(self._ready) if self._ready else 0,
            "write_buffers_hwm": self.write_buffers_hwm,
            "read_buffers_hwm": self.read_buffers_hwm,
            "closed": self._closed,
        }

    # -- helpers ----------------------------------------------------------------------------

    def _require(self, mode: str, op: str) -> None:
        if self.mode is None:
            raise StreamClosedError(f"{op}() on unopened stream")
        if self._closed:
            raise StreamClosedError(f"{op}() on closed stream")
        if self.mode != mode:
            raise VMPIError(f"{op}() on a {self.mode!r}-mode stream")
