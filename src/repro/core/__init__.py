"""Core public API: online coupling sessions and tool comparisons.

:class:`~repro.core.session.CouplingSession` is the paper's user story —
"a user launching multiple instrumented applications gets a dedicated
report with full details of each program's behaviour, briefly after
execution ends"::

    from repro import CouplingSession
    from repro.apps import nas_kernel

    session = CouplingSession()
    session.add_application(nas_kernel("CG", 128, "C"))
    session.set_analyzer(ratio=1.0)
    result = session.run()
    print(result.report.render())

:mod:`~repro.core.comparison` runs the same application under the baseline
tool models (Figure 16).
"""

from repro.core.session import CouplingSession, SessionResult
from repro.core.comparison import ToolRunResult, run_tool, compare_tools, TOOLS

__all__ = [
    "CouplingSession",
    "SessionResult",
    "ToolRunResult",
    "run_tool",
    "compare_tools",
    "TOOLS",
]
