"""AlertRouter fan-out: application alerts and health alerts on one bus."""

import numpy as np
import pytest

from repro.analysis.alerts import Alert, AlertConfig, AlertMonitor, AlertRouter
from repro.errors import ConfigError, ReproError
from repro.instrument.events import CALL_IDS, EVENT_DTYPE
from repro.telemetry import HealthAlert


def make_alert(kind="waiting", rank=0, t=1.0):
    return Alert(kind=kind, app="A", rank=rank, t_detect=t, value=0.9, threshold=0.5)


class TestAlertRouter:
    def test_rejects_bad_history_and_handler(self):
        with pytest.raises(ConfigError):
            AlertRouter(history=0)
        with pytest.raises(ConfigError):
            AlertRouter().subscribe("not-callable")

    def test_route_requires_kind(self):
        with pytest.raises(ReproError):
            AlertRouter().route(object())

    def test_fan_out_by_kind(self):
        router = AlertRouter()
        everything, waiting_only = [], []
        router.subscribe(everything.append)
        router.subscribe(waiting_only.append, kind="waiting")
        a = make_alert("waiting")
        b = make_alert("message_rate")
        router.route(a)
        router.route(b)
        assert everything == [a, b]
        assert waiting_only == [a]
        assert router.routed == 2
        assert router.by_kind() == {"waiting": 1, "message_rate": 1}

    def test_history_is_bounded(self):
        router = AlertRouter(history=3)
        for i in range(10):
            router.route(make_alert(t=float(i)))
        assert len(router.alerts) == 3
        assert router.dropped == 7
        assert router.routed == 10
        assert [a.t_detect for a in router.alerts] == [7.0, 8.0, 9.0]

    def test_mixed_alert_types_share_the_bus(self):
        router = AlertRouter()
        seen = []
        router.subscribe(seen.append, kind="stream_stall")
        router.route(make_alert("waiting"))
        health = HealthAlert(
            kind="stream_stall", t_detect=2.0, severity="warn",
            value=500.0, threshold=200.0,
        )
        router.route(health)
        assert seen == [health]
        assert router.by_kind() == {"waiting": 1, "stream_stall": 1}


def _events(rows):
    """rows: (call_name, t_start, t_end) tuples -> structured event array."""
    out = np.zeros(len(rows), dtype=EVENT_DTYPE)
    for i, (call, t0, t1) in enumerate(rows):
        out[i]["call"] = CALL_IDS[call]
        out[i]["t_start"] = t0
        out[i]["t_end"] = t1
    return out


class TestAlertMonitorRouting:
    def test_update_routes_through_router(self):
        router = AlertRouter()
        monitor = AlertMonitor(
            "A", 4, config=AlertConfig(wait_threshold=0.5, window=0.1),
            router=router,
        )
        # One rank spends an entire 0.1s window inside MPI_Recv.
        raised = monitor.update(1, _events([("MPI_Recv", 0.0, 0.1)]))
        assert [a.kind for a in raised] == ["waiting"]
        assert router.alerts == raised
        assert monitor.alerts == raised

    def test_finalize_routes_silence(self):
        router = AlertRouter()
        monitor = AlertMonitor(
            "A", 2, config=AlertConfig(silence_threshold=1.0), router=router,
        )
        monitor.update(0, _events([("MPI_Send", 0.0, 0.01)]))
        raised = monitor.finalize(t_end=5.0)
        assert [a.kind for a in raised] == ["silence"]
        assert router.by_kind()["silence"] == 1

    def test_routerless_monitor_still_records(self):
        monitor = AlertMonitor(
            "A", 4, config=AlertConfig(wait_threshold=0.5, window=0.1)
        )
        raised = monitor.update(1, _events([("MPI_Recv", 0.0, 0.1)]))
        assert monitor.alerts == raised
