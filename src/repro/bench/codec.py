"""Codec bench: wire-volume reduction versus codec CPU, chain by chain.

Runs the fig14-style coupled workload (an instrumented SP kernel
streaming into the analyzer partition) once per reduction chain and
reports what each stage composition buys: physical wire bytes versus
modelled content bytes, the per-pack compression ratio, the virtual CPU
charged for encoding and decoding, and the end-to-end slowdown against
the identity chain.  One table row per chain, so ``BENCH_codec.json``
*is* the reduction trade-off document.

Internal consistency is asserted on every row before it is emitted:

* no pack may be rejected (every descriptor must round-trip);
* lossless chains must deliver exactly the identity chain's event count;
* the session's reduction accounting must telescope — writer-side wire
  bytes equal analyzer-side wire bytes ingested;
* compressing chains must actually compress (``ratio < 1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.nas import SP
from repro.core.session import CouplingSession
from repro.errors import ConfigError
from repro.instrument.overhead import InstrumentationCost
from repro.network.machine import MachineSpec, TERA100
from repro.telemetry import Telemetry
from repro.util.tables import Table

#: chain sweep: identity baseline, then increasingly composed reductions
CHAINS = ("", "delta", "delta+dict", "delta+dict+zlib")


@dataclass
class CodecPoint:
    """One reduction chain on one coupled-workload configuration."""

    chain: str
    events: int
    packs: int
    bytes_content: int
    bytes_wire: int
    #: physical wire bytes per modelled content byte (< 1 compresses)
    ratio: float
    encode_cpu_s: float
    decode_cpu_s: float
    app_walltime_s: float
    #: app walltime relative to the identity chain (1.0 = free)
    slowdown: float


@dataclass
class CodecResult:
    """Reduction-chain sweep of the wire-volume/CPU trade-off."""

    machine: str
    scale: str
    seed: int
    points: list[CodecPoint] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            [
                "chain", "events", "packs", "content_kb", "wire_kb",
                "ratio", "encode_us", "decode_us", "walltime_s", "slowdown",
            ],
            title=f"Event reduction sweep ({self.machine}, scale={self.scale})",
        )
        for p in self.points:
            t.add_row(
                p.chain or "identity", p.events, p.packs,
                f"{p.bytes_content / 1024:.2f}", f"{p.bytes_wire / 1024:.2f}",
                f"{p.ratio:.4f}", f"{p.encode_cpu_s * 1e6:.2f}",
                f"{p.decode_cpu_s * 1e6:.2f}", f"{p.app_walltime_s:.6f}",
                f"{p.slowdown:.6f}",
            )
        return t


def _workload(scale: str):
    if scale == "paper":
        return SP(64, "C", iterations=3)
    if scale == "small":
        return SP(16, "C", iterations=3)
    raise ConfigError(f"unknown scale {scale!r}")


def codec_reduction(
    scale: str = "small",
    machine: MachineSpec = TERA100,
    seed: int = 0,
    telemetry: Telemetry | None = None,
    chains: tuple[str, ...] = CHAINS,
) -> CodecResult:
    """Sweep reduction chains over the coupled workload.

    The identity chain runs first and anchors the slowdown column; each
    subsequent chain is gated on the consistency invariants listed in the
    module docstring before its row is recorded.
    """
    kernel = _workload(scale)
    result = CodecResult(machine=machine.name, scale=scale, seed=seed)
    # Small packs so every writer emits a stream of them: per-pack ratio
    # statistics need many frames, not one tail flush per rank.
    cost = InstrumentationCost(block_size=4096, na_buffers=2)
    base_walltime = None
    base_events = None
    for chain in chains:
        session = CouplingSession(
            machine=machine, seed=seed, instrumentation=cost, telemetry=telemetry
        )
        name = session.add_application(kernel)
        session.set_analyzer(ratio=4.0)
        if chain:
            session.set_reduction(chain)
        run = session.run()
        app = run.app(name)
        stats = run.analyzer_stats
        if stats["packs_rejected"] != 0:
            raise ConfigError(
                f"chain {chain!r}: {stats['packs_rejected']} packs rejected "
                f"({stats['rejects_by_cause']})"
            )
        if chain:
            red = run.reduction
            bytes_content, bytes_wire = red["bytes_content"], red["bytes_wire"]
            ratio = red["ratio"]
            encode_cpu, decode_cpu = red["encode_cpu_s"], red["decode_cpu_s"]
            if bytes_wire != stats["bytes_wire"]:
                raise ConfigError(
                    f"chain {chain!r}: writer wire bytes {bytes_wire} != "
                    f"analyzer wire bytes {stats['bytes_wire']}"
                )
            if ratio >= 1.0:
                raise ConfigError(
                    f"chain {chain!r} expands the stream: ratio {ratio:.4f}"
                )
        else:
            # Aggregated over every analyzer rank: modelled content bytes
            # ingested and the physical frame bytes that carried them.
            bytes_content = stats["bytes"]
            bytes_wire = stats["bytes_wire"]
            ratio = bytes_wire / bytes_content if bytes_content else 0.0
            encode_cpu = decode_cpu = 0.0
        if base_events is None:
            base_events = app.events
        elif app.events != base_events:
            raise ConfigError(
                f"chain {chain!r} lost events: {app.events} != {base_events}"
            )
        if base_walltime is None:
            base_walltime = app.walltime
        result.points.append(
            CodecPoint(
                chain=chain,
                events=app.events,
                packs=app.packs,
                bytes_content=bytes_content,
                bytes_wire=bytes_wire,
                ratio=ratio,
                encode_cpu_s=encode_cpu,
                decode_cpu_s=decode_cpu,
                app_walltime_s=app.walltime,
                slowdown=app.walltime / base_walltime if base_walltime else 0.0,
            )
        )
    return result
