"""MG: multigrid V-cycles with per-level halo exchanges.

Ranks form a 3D mesh; every V-cycle visits the grid hierarchy from the
finest level down and back, exchanging six face halos per level whose size
shrinks 4x per level — many medium messages plus one residual allreduce per
step.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.apps.base import ClassSpec, NASKernel, is_power_of_two


def grid_3d(nprocs: int) -> tuple[int, int, int]:
    """Factor a power-of-two count into the most cubic (px, py, pz)."""
    log_p = int(math.log2(nprocs))
    pz = 2 ** (log_p // 3)
    py = 2 ** ((log_p - log_p // 3) // 2)
    px = nprocs // (py * pz)
    return px, py, pz


class MG(NASKernel):
    name = "MG"
    CLASSES = {
        "C": ClassSpec(size=512, niter=20, gops=155.7),
        "D": ClassSpec(size=1024, niter=50, gops=3493.0),
    }

    @classmethod
    def validate_nprocs(cls, nprocs: int) -> None:
        if not is_power_of_two(nprocs):
            raise ConfigError(f"MG requires a power-of-two process count, got {nprocs}")

    def levels(self) -> int:
        """Grid hierarchy depth down to a 4^3 coarse grid."""
        return max(1, int(math.log2(self.spec.size)) - 2)

    def face_bytes(self, level: int, px: int) -> int:
        edge = max(4, self.spec.size >> level)
        local_edge = max(1, edge // px)
        return max(64, int(8 * local_edge * local_edge))

    def main(self, mpi):
        yield from mpi.init()
        comm = mpi.comm_world
        if comm.size != self.nprocs:
            raise ConfigError(
                f"{self.label} built for {self.nprocs} ranks, launched on {comm.size}"
            )
        px, py, pz = grid_3d(self.nprocs)
        x = comm.rank % px
        y = (comm.rank // px) % py
        z = comm.rank // (px * py)
        neighbours = [
            ((x + 1) % px) + y * px + z * px * py,
            ((x - 1) % px) + y * px + z * px * py,
            x + ((y + 1) % py) * px + z * px * py,
            x + ((y - 1) % py) * px + z * px * py,
            x + y * px + ((z + 1) % pz) * px * py,
            x + y * px + ((z - 1) % pz) * px * py,
        ]
        nlevels = self.levels()
        # A V-cycle visits each level twice (down + up).
        level_cpu = self.step_compute_seconds(mpi) / (2 * nlevels)
        for _it in range(self.iterations):
            for phase_levels in (range(nlevels), reversed(range(nlevels))):
                for level in phase_levels:
                    yield from mpi.compute(level_cpu)
                    face = self.face_bytes(level, px)
                    reqs = []
                    for i, nb in enumerate(neighbours):
                        if nb == comm.rank:
                            continue
                        rq = yield from comm.irecv(source=nb, tag=50 + i // 2)
                        sq = yield from comm.isend(nb, nbytes=face, tag=50 + i // 2)
                        reqs += [rq, sq]
                    if reqs:
                        yield from comm.waitall(reqs)
            yield from comm.allreduce(nbytes=8)
        yield from comm.barrier()
        yield from mpi.finalize()
